"""Query serving: admission control, fair scheduling, graceful degradation.

The engines execute whatever is submitted; this package is the layer that
decides *whether* and *when* to execute it.  A :class:`QueryGateway`
accepts jobs from named tenants on simulated time and applies, in order:

* **admission control** — per-tenant and global queue-depth limits with
  explicit ``rejected`` / ``backpressure`` outcomes instead of unbounded
  queuing (:mod:`repro.service.gateway`);
* **weighted-fair scheduling** with priority lanes — interactive queries
  preempt-in-queue over background maintenance/scrub work
  (:mod:`repro.service.scheduler`);
* **deadlines and cooperative cancellation** — every admitted job may
  carry a deadline; expiry sheds it from the queue or cancels it
  mid-stage through :meth:`~repro.engine.smpe.SmpeEngine` job handles;
* **graceful degradation** — under sustained overload the gateway runs
  cheaper plan variants and sheds lowest-priority queued work before
  rejecting anything (:mod:`repro.service.shedding`);
* **per-tenant metrics** — p50/p99 latency, queue wait, admit/shed/reject
  counts, goodput, and the aggregated engine counters of every completed
  job (:mod:`repro.service.tenants`).

With one tenant, one job, and no contention the gateway adds zero
simulated time: a job served through it is bit-identical to direct
engine submission.
"""

from repro.service.gateway import (BackgroundWork, QueryGateway,
                                   ServiceTicket, background_build,
                                   background_compaction, background_ingest,
                                   background_rebalance, background_repair,
                                   background_scrub)
from repro.service.scheduler import LANES, FairScheduler, QueuedRequest
from repro.service.shedding import OverloadPolicy, ServiceDecision
from repro.service.tenants import ServiceMetrics, TenantSpec, percentile

__all__ = [
    "BackgroundWork",
    "QueryGateway",
    "ServiceTicket",
    "background_build",
    "background_compaction",
    "background_ingest",
    "background_rebalance",
    "background_repair",
    "background_scrub",
    "FairScheduler",
    "LANES",
    "QueuedRequest",
    "OverloadPolicy",
    "ServiceDecision",
    "ServiceMetrics",
    "TenantSpec",
    "percentile",
]
