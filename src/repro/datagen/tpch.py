"""A from-scratch TPC-H dataset generator (dbgen-shaped, laptop-scaled).

The paper's preliminary evaluation uses TPC-H (SF=128K, 128 TB on 128
nodes).  We reproduce the *shape* of that evaluation at laptop scale: this
generator emits all eight tables with the spec's cardinality ratios —

=========  =======================  ==========================
table      rows at scale factor SF  partition / primary key
=========  =======================  ==========================
region     5                        r_regionkey
nation     25                       n_nationkey
supplier   10,000 x SF              s_suppkey
customer   150,000 x SF             c_custkey
part       200,000 x SF             p_partkey
partsupp   4 per part               (p_partkey, s_suppkey)
orders     1,500,000 x SF           o_orderkey
lineitem   1-7 per order (~4 avg)   (l_orderkey, l_linenumber)
=========  =======================  ==========================

— uniform foreign keys, uniform ``o_orderdate`` over the spec's 1992-01-01
.. 1998-08-02 window, and spec-style derived columns (retail prices,
extended prices).  Everything is seeded and deterministic.

Because ``o_orderdate`` is uniform, predicate selectivity over a date range
is an analytic function of the window length; :meth:`TpchGenerator.
date_range_for_selectivity` inverts it, which is how the Figure 7 benchmark
sweeps selectivities.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.records import Record
from repro.datagen.rng import add_days, date_range_days, make_rng, \
    random_phrase
from repro.errors import DataGenerationError

__all__ = ["TpchGenerator", "TABLE_NAMES", "REGION_NAMES", "NATIONS"]

TABLE_NAMES = ("region", "nation", "supplier", "customer", "part",
               "partsupp", "orders", "lineitem")

REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: (name, region key) for the spec's 25 nations.
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

START_DATE = "1992-01-01"
END_DATE = "1998-08-02"
ORDER_STATUSES = ("O", "F", "P")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
            "HOUSEHOLD")


class TpchGenerator:
    """Generates a scaled TPC-H dataset of :class:`Record` rows."""

    def __init__(self, scale_factor: float = 0.01, seed: int = 0) -> None:
        if scale_factor <= 0:
            raise DataGenerationError(
                f"scale factor must be positive, got {scale_factor}")
        self.scale_factor = scale_factor
        self.seed = seed
        self.num_suppliers = max(1, round(10_000 * scale_factor))
        self.num_customers = max(1, round(150_000 * scale_factor))
        self.num_parts = max(1, round(200_000 * scale_factor))
        self.num_orders = max(1, round(1_500_000 * scale_factor))
        self._date_span = date_range_days(START_DATE, END_DATE)

    # -- small tables ----------------------------------------------------

    def region(self) -> list[Record]:
        return [Record({"r_regionkey": key, "r_name": name,
                        "r_comment": f"region of {name.lower()}"})
                for key, name in enumerate(REGION_NAMES)]

    def nation(self) -> list[Record]:
        return [Record({"n_nationkey": key, "n_name": name,
                        "n_regionkey": region,
                        "n_comment": f"nation of {name.lower()}"})
                for key, (name, region) in enumerate(NATIONS)]

    # -- dimension tables --------------------------------------------------

    def supplier(self) -> list[Record]:
        rng = make_rng(self.seed, "supplier")
        rows = []
        for key in range(1, self.num_suppliers + 1):
            rows.append(Record({
                "s_suppkey": key,
                "s_name": f"Supplier#{key:09d}",
                "s_nationkey": rng.randrange(len(NATIONS)),
                "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "s_comment": random_phrase(rng, 4),
            }))
        return rows

    def customer(self) -> list[Record]:
        rng = make_rng(self.seed, "customer")
        rows = []
        for key in range(1, self.num_customers + 1):
            rows.append(Record({
                "c_custkey": key,
                "c_name": f"Customer#{key:09d}",
                "c_nationkey": rng.randrange(len(NATIONS)),
                "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "c_mktsegment": rng.choice(SEGMENTS),
                "c_comment": random_phrase(rng, 4),
            }))
        return rows

    def part(self) -> list[Record]:
        rng = make_rng(self.seed, "part")
        rows = []
        for key in range(1, self.num_parts + 1):
            # Spec formula: (90000 + ((P/10) mod 20001) + 100*(P mod 1000))
            # / 100 — prices in [900, 2098.99].
            price = (90_000 + (key // 10) % 20_001 + 100 * (key % 1000)) / 100
            rows.append(Record({
                "p_partkey": key,
                "p_name": random_phrase(rng, 5),
                "p_brand": f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
                "p_type": random_phrase(rng, 3).upper(),
                "p_size": rng.randrange(1, 51),
                "p_retailprice": round(price, 2),
                "p_comment": random_phrase(rng, 2),
            }))
        return rows

    def partsupp(self) -> list[Record]:
        rng = make_rng(self.seed, "partsupp")
        rows = []
        for partkey in range(1, self.num_parts + 1):
            for offset in range(4):
                suppkey = 1 + (partkey + offset *
                               (self.num_suppliers // 4 + 1)
                               ) % self.num_suppliers
                rows.append(Record({
                    "ps_partkey": partkey,
                    "ps_suppkey": suppkey,
                    "ps_availqty": rng.randrange(1, 10_000),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                }))
        return rows

    # -- fact tables -------------------------------------------------------

    def orders(self) -> list[Record]:
        rows = []
        for order, __ in self._orders_with_lines():
            rows.append(order)
        return rows

    def lineitem(self) -> list[Record]:
        rows = []
        for __, lines in self._orders_with_lines():
            rows.extend(lines)
        return rows

    def orders_and_lineitems(self) -> tuple[list[Record], list[Record]]:
        """Both fact tables in one pass (they share generation state)."""
        orders, lineitems = [], []
        for order, lines in self._orders_with_lines():
            orders.append(order)
            lineitems.extend(lines)
        return orders, lineitems

    def _orders_with_lines(self) -> Iterator[tuple[Record, list[Record]]]:
        rng = make_rng(self.seed, "orders")
        for key in range(1, self.num_orders + 1):
            custkey = rng.randrange(1, self.num_customers + 1)
            orderdate = add_days(START_DATE,
                                 rng.randrange(self._date_span + 1))
            num_lines = rng.randrange(1, 8)
            lines = []
            total = 0.0
            for linenumber in range(1, num_lines + 1):
                partkey = rng.randrange(1, self.num_parts + 1)
                suppkey = rng.randrange(1, self.num_suppliers + 1)
                quantity = rng.randrange(1, 51)
                extended = round(quantity * (900 + partkey % 1000) / 10, 2)
                total += extended
                lines.append(Record({
                    "l_orderkey": key,
                    "l_linenumber": linenumber,
                    "l_partkey": partkey,
                    "l_suppkey": suppkey,
                    "l_quantity": quantity,
                    "l_extendedprice": extended,
                    "l_discount": round(rng.uniform(0.0, 0.10), 2),
                    "l_tax": round(rng.uniform(0.0, 0.08), 2),
                    "l_shipdate": add_days(orderdate,
                                           rng.randrange(1, 122)),
                    "l_shipmode": rng.choice(SHIP_MODES),
                }))
            order = Record({
                "o_orderkey": key,
                "o_custkey": custkey,
                "o_orderstatus": rng.choice(ORDER_STATUSES),
                "o_totalprice": round(total, 2),
                "o_orderdate": orderdate,
                "o_orderpriority": f"{rng.randrange(1, 6)}-PRIORITY",
                "o_shippriority": 0,
            })
            yield order, lines

    # -- whole dataset -----------------------------------------------------

    def generate_all(self) -> dict[str, list[Record]]:
        """Every table, keyed by name."""
        orders, lineitems = self.orders_and_lineitems()
        return {
            "region": self.region(),
            "nation": self.nation(),
            "supplier": self.supplier(),
            "customer": self.customer(),
            "part": self.part(),
            "partsupp": self.partsupp(),
            "orders": orders,
            "lineitem": lineitems,
        }

    # -- selectivity helpers ------------------------------------------------

    def date_range_for_selectivity(self, selectivity: float,
                                   start: str = START_DATE
                                   ) -> tuple[str, str]:
        """A date window whose uniform-date selectivity is ~``selectivity``.

        Selectivity here is the fraction of *orders* whose ``o_orderdate``
        falls inside the (inclusive) window.
        """
        if not 0 < selectivity <= 1:
            raise DataGenerationError(
                f"selectivity must be in (0, 1], got {selectivity}")
        total_days = self._date_span + 1
        window_days = max(1, math.ceil(selectivity * total_days))
        offset = date_range_days(START_DATE, start)
        end_offset = min(offset + window_days - 1, self._date_span)
        return add_days(START_DATE, offset), add_days(START_DATE, end_offset)

    def selectivity_of_range(self, low: str, high: str) -> float:
        """Exact uniform selectivity of an inclusive date window."""
        days = date_range_days(low, high) + 1
        return min(1.0, max(0.0, days / (self._date_span + 1)))
