"""Synthetic Japanese public-health insurance claims (paper, Section IV).

The real nationwide claims database is non-public, so this generator emits
the closest synthetic equivalent of the standardized format in Fig. 8: each
claim is a raw *text* record made of typed sub-records, one per line, the
type given by the two leading characters —

=====  ==================================================================
code   content
=====  ==================================================================
IR     the claiming hospital; its ``type`` field says whether the claim
       is *piecework* or *DPC*, which changes the record layout
       ("the records are dynamically defined")
RE     service category (inpatient/outpatient) and patient information
HO     total medical expenses (insurance points)
SI     medical treatments provided (repeated)
IY     medicines prescribed (repeated)
SY     diseases diagnosed (repeated)
=====  ==================================================================

Disease/medicine co-occurrence is built in so the paper's three analytical
queries are meaningful:

* **Q1** hypertension ↔ antihypertensives (common, strongly co-prescribed),
* **Q2** acne ↔ antimicrobials (uncommon, moderately co-prescribed),
* **Q3** diabetes ↔ GLP-1 receptor agonists (moderate prevalence, rare
  co-prescription — GLP-1 drugs are newer and selective).

Nothing downstream assumes a schema: :class:`ClaimInterpreter` parses the
raw text at read time (schema-on-read), exactly how ReDe consumes the real
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.interpreters import Interpreter
from repro.core.records import Record
from repro.datagen.rng import make_rng
from repro.errors import DataGenerationError

__all__ = [
    "DiseaseProfile",
    "DISEASE_PROFILES",
    "DISEASE_CODES",
    "MEDICINE_CODES",
    "BACKGROUND_DISEASES",
    "BACKGROUND_MEDICINES",
    "ClaimsGenerator",
    "ClaimInterpreter",
    "claim_id_of",
    "disease_codes_of",
    "medicine_codes_of",
]


@dataclass(frozen=True)
class DiseaseProfile:
    """One modelled condition and its paired medicine category."""

    name: str
    disease_codes: tuple[str, ...]
    medicine_codes: tuple[str, ...]
    prevalence: float        # fraction of claims diagnosing the condition
    prescription_rate: float  # P(paired medicine | condition on the claim)


DISEASE_PROFILES: dict[str, DiseaseProfile] = {
    "hypertension": DiseaseProfile(
        name="hypertension",
        disease_codes=("SY-HT01", "SY-HT02", "SY-HT03"),
        medicine_codes=("IY-AHT01", "IY-AHT02", "IY-AHT03", "IY-AHT04"),
        prevalence=0.20,
        prescription_rate=0.75,
    ),
    "acne": DiseaseProfile(
        name="acne",
        disease_codes=("SY-AC01", "SY-AC02"),
        medicine_codes=("IY-AMC01", "IY-AMC02", "IY-AMC03"),
        prevalence=0.03,
        prescription_rate=0.55,
    ),
    "diabetes": DiseaseProfile(
        name="diabetes",
        disease_codes=("SY-DM01", "SY-DM02", "SY-DM03"),
        medicine_codes=("IY-GLP01", "IY-GLP02"),
        prevalence=0.08,
        prescription_rate=0.20,
    ),
}

DISEASE_CODES = {name: profile.disease_codes
                 for name, profile in DISEASE_PROFILES.items()}
MEDICINE_CODES = {name: profile.medicine_codes
                  for name, profile in DISEASE_PROFILES.items()}

BACKGROUND_DISEASES = tuple(f"SY-BG{i:02d}" for i in range(30))
BACKGROUND_MEDICINES = tuple(f"IY-BG{i:02d}" for i in range(40))
TREATMENT_CODES = tuple(f"SI-TR{i:02d}" for i in range(25))


class ClaimsGenerator:
    """Generates raw-text claim records with realistic nesting."""

    def __init__(self, num_claims: int = 5000, seed: int = 0,
                 num_hospitals: int = 200,
                 num_patients: int | None = None) -> None:
        if num_claims < 1:
            raise DataGenerationError("need at least one claim")
        self.num_claims = num_claims
        self.seed = seed
        self.num_hospitals = num_hospitals
        self.num_patients = num_patients or max(1, num_claims // 3)

    def generate(self) -> list[Record]:
        """All claims, each a :class:`Record` wrapping raw claim text."""
        rng = make_rng(self.seed, "claims")
        claims = []
        for claim_id in range(1, self.num_claims + 1):
            claims.append(Record(self._one_claim(rng, claim_id)))
        return claims

    def _one_claim(self, rng, claim_id: int) -> str:
        hospital = rng.randrange(1, self.num_hospitals + 1)
        claim_type = "DPC" if rng.random() < 0.25 else "piecework"
        month = f"2023{rng.randrange(1, 13):02d}"
        patient = rng.randrange(1, self.num_patients + 1)
        category = "inpatient" if rng.random() < 0.15 else "outpatient"
        age = rng.randrange(0, 100)
        sex = rng.choice(("1", "2"))

        diseases: list[str] = []
        medicines: list[tuple[str, int]] = []
        for profile in DISEASE_PROFILES.values():
            if rng.random() < profile.prevalence:
                diseases.append(rng.choice(profile.disease_codes))
                if rng.random() < profile.prescription_rate:
                    medicines.append((rng.choice(profile.medicine_codes),
                                      rng.randrange(50, 500)))
        for __ in range(rng.randrange(0, 4)):
            diseases.append(rng.choice(BACKGROUND_DISEASES))
        for __ in range(rng.randrange(0, 5)):
            medicines.append((rng.choice(BACKGROUND_MEDICINES),
                              rng.randrange(10, 300)))

        treatments = [(rng.choice(TREATMENT_CODES), rng.randrange(20, 2000))
                      for __ in range(rng.randrange(1, 7))]
        total_points = (sum(points for __, points in medicines)
                        + sum(points for __, points in treatments))

        lines = [f"IR,{claim_id},{hospital},{claim_type},{month}"]
        lines.append(f"RE,{patient},{category},{age},{sex}")
        if claim_type == "DPC":
            # DPC claims carry a diagnosis-group code in their HO record —
            # one of the dynamically-defined layout differences.
            lines.append(f"HO,{total_points},DPC{rng.randrange(1, 500):04d}")
        else:
            lines.append(f"HO,{total_points}")
        for code in diseases:
            main = "1" if code == diseases[0] else "0"
            lines.append(f"SY,{code},{main}")
        for code, points in treatments:
            lines.append(f"SI,{code},{points},1")
        for code, points in medicines:
            lines.append(f"IY,{code},{points},1")
        return "\n".join(lines)


class ClaimInterpreter(Interpreter):
    """Schema-on-read parser for the raw claim text.

    Produces a nested mapping: scalar fields from IR/RE/HO plus the
    repeated sub-record lists (``diseases``, ``treatments``,
    ``medicines``).  Unknown sub-record types are ignored, and missing
    sub-records simply yield empty fields — schema-on-read never fails on
    malformed input, it degrades.
    """

    def interpret(self, record: Record) -> Mapping[str, Any]:
        if not isinstance(record.data, str):
            return {}
        fields: dict[str, Any] = {
            "diseases": [], "treatments": [], "medicines": [],
            "medicine_points": {},
        }
        for line in record.data.splitlines():
            parts = line.split(",")
            kind = parts[0]
            try:
                if kind == "IR":
                    fields["claim_id"] = int(parts[1])
                    fields["hospital_id"] = int(parts[2])
                    fields["claim_type"] = parts[3]
                    fields["billing_month"] = parts[4]
                elif kind == "RE":
                    fields["patient_id"] = int(parts[1])
                    fields["category"] = parts[2]
                    fields["age"] = int(parts[3])
                    fields["sex"] = parts[4]
                elif kind == "HO":
                    fields["total_points"] = int(parts[1])
                    if len(parts) > 2:
                        fields["dpc_code"] = parts[2]
                elif kind == "SY":
                    fields["diseases"].append(parts[1])
                elif kind == "SI":
                    fields["treatments"].append(parts[1])
                elif kind == "IY":
                    fields["medicines"].append(parts[1])
                    fields["medicine_points"][parts[1]] = int(parts[2])
            except (IndexError, ValueError):
                continue  # tolerate malformed sub-records
        return fields


_INTERPRETER = ClaimInterpreter()


def claim_id_of(record: Record) -> Any:
    """Partition-key extractor for the claims file."""
    return _INTERPRETER.field(record, "claim_id")


def disease_codes_of(record: Record) -> list[str]:
    """Multi-valued key extractor: every diagnosed disease code."""
    return list(_INTERPRETER.field(record, "diseases") or [])


def medicine_codes_of(record: Record) -> list[str]:
    """Multi-valued key extractor: every prescribed medicine code."""
    return list(_INTERPRETER.field(record, "medicines") or [])
