"""Seeded randomness helpers shared by the dataset generators.

Everything downstream of a seed is deterministic: generators create their
own ``random.Random`` instances (never the global RNG) so datasets are
reproducible record-for-record across runs and machines.
"""

from __future__ import annotations

import datetime
import random
from typing import Sequence

__all__ = ["make_rng", "random_phrase", "date_range_days", "add_days",
           "zipf_sampler", "WORDS"]

#: A small neutral corpus for text columns (TPC-H-flavoured).
WORDS = (
    "almond antique aquamarine azure beige bisque blanched blue blush "
    "brown burlywood burnished chartreuse chiffon chocolate coral cornflower "
    "cream cyan dark deep dim dodger drab firebrick floral forest frosted "
    "gainsboro ghost goldenrod green grey honeydew hot indian ivory khaki "
    "lace lavender lawn lemon light lime linen magenta maroon medium metallic "
    "midnight mint misty moccasin navajo navy olive orange orchid pale "
    "papaya peach peru pink plum powder puff purple red rose rosy royal "
    "saddle salmon sandy seashell sienna sky slate smoke snow spring steel "
    "tan thistle tomato turquoise violet wheat white yellow"
).split()


def make_rng(seed: int, stream: str = "") -> random.Random:
    """A dedicated RNG for one generator stream.

    Distinct ``stream`` labels decorrelate tables generated from the same
    top-level seed without consuming each other's sequences.
    """
    if stream:
        seed = seed * 1_000_003 + sum(ord(c) for c in stream)
    return random.Random(seed)


def random_phrase(rng: random.Random, num_words: int) -> str:
    """A short text phrase, e.g. for part names and comments."""
    return " ".join(rng.choice(WORDS) for __ in range(num_words))


def zipf_sampler(rng: random.Random, n: int, s: float = 1.0):
    """A sampler over ``[0, n)`` with Zipf(s) probabilities.

    Rank ``k`` (0-based) is drawn with probability proportional to
    ``1 / (k + 1) ** s``.  ``s = 0`` degenerates to uniform.  Used to
    inject fanout/popularity skew into synthetic workloads (e.g. the
    skew-tolerance ablation).
    """
    import bisect

    if n < 1:
        raise ValueError(f"zipf domain must be non-empty, got n={n}")
    cumulative: list[float] = []
    total = 0.0
    for k in range(n):
        total += 1.0 / (k + 1) ** s
        cumulative.append(total)

    def sample() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    return sample


def date_range_days(start: str, end: str) -> int:
    """Days between two ISO dates (inclusive span length minus one)."""
    first = datetime.date.fromisoformat(start)
    last = datetime.date.fromisoformat(end)
    return (last - first).days


def add_days(start: str, days: int) -> str:
    """ISO date ``days`` after ``start``."""
    first = datetime.date.fromisoformat(start)
    return (first + datetime.timedelta(days=days)).isoformat()
