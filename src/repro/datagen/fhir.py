"""Synthetic FHIR-style electronic medical records.

The paper's case study closes with: "The international medical community
has recently promoted FHIR, the format standard of electronic medical
records.  FHIR has a similar design to the Japanese insurance claims
format, employing the nested record organization.  We expect ReDe would
also manage and process the FHIR data flexibly and efficiently."

This module substantiates that expectation.  It generates FHIR-shaped
*Bundle* resources — nested JSON-like mappings, one bundle per patient
encounter, containing ``Patient``, ``Condition`` (ICD-ish codes) and
``MedicationRequest`` entries with the same disease/medicine co-occurrence
profiles as the claims generator — plus the schema-on-read interpreter and
key extractors that let the LakeHarbor catalog index them post hoc.  The
integration tests run the Q1-Q3-style analytics unchanged over FHIR
bundles, exercising exactly the path the paper predicts.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.interpreters import Interpreter
from repro.core.records import Record
from repro.datagen.claims import DISEASE_PROFILES
from repro.datagen.rng import make_rng
from repro.errors import DataGenerationError

__all__ = [
    "FhirGenerator",
    "FhirBundleInterpreter",
    "bundle_id_of",
    "condition_codes_of",
    "medication_codes_of",
]

#: Map the claims-code space onto FHIR-style code systems so the two
#: datasets answer the same epidemiological questions.
_CONDITION_SYSTEM = "http://example.org/fhir/CodeSystem/icd10-like"
_MEDICATION_SYSTEM = "http://example.org/fhir/CodeSystem/atc-like"


class FhirGenerator:
    """Generates FHIR-style encounter bundles as nested mapping records."""

    def __init__(self, num_bundles: int = 5000, seed: int = 0,
                 num_patients: int | None = None) -> None:
        if num_bundles < 1:
            raise DataGenerationError("need at least one bundle")
        self.num_bundles = num_bundles
        self.seed = seed
        self.num_patients = num_patients or max(1, num_bundles // 3)

    def generate(self) -> list[Record]:
        rng = make_rng(self.seed, "fhir")
        bundles = []
        for bundle_id in range(1, self.num_bundles + 1):
            bundles.append(Record(self._one_bundle(rng, bundle_id)))
        return bundles

    def _one_bundle(self, rng, bundle_id: int) -> Mapping[str, Any]:
        patient_id = rng.randrange(1, self.num_patients + 1)
        entries: list[Mapping[str, Any]] = [{
            "resource": {
                "resourceType": "Patient",
                "id": f"pat-{patient_id}",
                "gender": rng.choice(("male", "female")),
                "birthDate": f"{rng.randrange(1930, 2020)}-01-01",
            }
        }]
        conditions: list[str] = []
        medications: list[str] = []
        for profile in DISEASE_PROFILES.values():
            if rng.random() < profile.prevalence:
                conditions.append(rng.choice(profile.disease_codes))
                if rng.random() < profile.prescription_rate:
                    medications.append(rng.choice(profile.medicine_codes))
        for __ in range(rng.randrange(0, 3)):
            conditions.append(f"SY-BG{rng.randrange(30):02d}")
        for __ in range(rng.randrange(0, 4)):
            medications.append(f"IY-BG{rng.randrange(40):02d}")

        for code in conditions:
            entries.append({
                "resource": {
                    "resourceType": "Condition",
                    "code": {"coding": [{"system": _CONDITION_SYSTEM,
                                         "code": code}]},
                    "subject": {"reference": f"Patient/pat-{patient_id}"},
                }
            })
        for code in medications:
            entries.append({
                "resource": {
                    "resourceType": "MedicationRequest",
                    "medicationCodeableConcept": {
                        "coding": [{"system": _MEDICATION_SYSTEM,
                                    "code": code}]},
                    "subject": {"reference": f"Patient/pat-{patient_id}"},
                    "dispenseRequest": {
                        "quantity": {"value": rng.randrange(1, 90)}},
                }
            })
        return {
            "resourceType": "Bundle",
            "id": f"bundle-{bundle_id}",
            "type": "collection",
            "total_cost": sum(rng.randrange(50, 2000)
                              for __ in range(max(1, len(medications)))),
            "entry": entries,
        }


class FhirBundleInterpreter(Interpreter):
    """Schema-on-read over FHIR bundles.

    Flattens the nested entry list into the same field shape the claims
    interpreter produces (``diseases``, ``medicines``, ``total_points``),
    so the case-study queries work on FHIR data *unchanged* — the point
    the paper's closing remark makes.
    """

    def interpret(self, record: Record) -> Mapping[str, Any]:
        data = record.data
        if not isinstance(data, Mapping) or \
                data.get("resourceType") != "Bundle":
            return {}
        fields: dict[str, Any] = {
            "claim_id": _bundle_number(data.get("id", "")),
            "diseases": [],
            "medicines": [],
            "total_points": data.get("total_cost", 0),
        }
        for entry in data.get("entry", []):
            resource = entry.get("resource", {})
            kind = resource.get("resourceType")
            if kind == "Patient":
                fields["patient_id"] = resource.get("id")
                fields["gender"] = resource.get("gender")
            elif kind == "Condition":
                code = _first_code(resource.get("code", {}))
                if code is not None:
                    fields["diseases"].append(code)
            elif kind == "MedicationRequest":
                code = _first_code(
                    resource.get("medicationCodeableConcept", {}))
                if code is not None:
                    fields["medicines"].append(code)
        return fields


def _first_code(codeable: Mapping[str, Any]) -> Any:
    for coding in codeable.get("coding", []):
        if "code" in coding:
            return coding["code"]
    return None


def _bundle_number(bundle_id: str) -> int | None:
    __, __, tail = str(bundle_id).rpartition("-")
    return int(tail) if tail.isdigit() else None


_INTERPRETER = FhirBundleInterpreter()


def bundle_id_of(record: Record) -> Any:
    """Partition-key extractor for a FHIR bundle file."""
    return _INTERPRETER.field(record, "claim_id")


def condition_codes_of(record: Record) -> list[str]:
    """Multi-valued key extractor over nested Condition resources."""
    return list(_INTERPRETER.field(record, "diseases") or [])


def medication_codes_of(record: Record) -> list[str]:
    """Multi-valued key extractor over nested MedicationRequests."""
    return list(_INTERPRETER.field(record, "medicines") or [])
