"""IoT traffic-sensor workload: a continuously-fed civic data lake.

Modeled on the City of Austin transportation data lake (the
``atd-data-lake`` feeds): a fleet of roadside sensors uploading
speed/volume readings in bursts, with two properties TPC-H and the
insurance claims never exercise —

* **late arrivals** — sensors buffer readings through connectivity
  gaps, so a batch routinely carries event times below the watermark;
* **schema drift** — firmware generations emit different record
  shapes.  Legacy devices send ``{"dev", "ts", "spd", "vol"}``; the
  current generation sends ``{"device_id", "ts", "speed_kmh",
  "volume", "occupancy_pct", "battery_v"}``.  Nothing downstream is
  allowed to care: :class:`SensorInterpreter` absorbs the drift at
  read time, which is exactly the LakeHarbor schema-on-read bet.

The generator emits :class:`~repro.ingest.source.MicroBatch` objects on
a deterministic seeded stream: append-only *readings* plus periodic
*device-status* upserts (latest battery/health per device — the
newest-wins path).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.interpreters import Interpreter
from repro.core.records import Record
from repro.datagen.rng import make_rng
from repro.ingest.source import MicroBatch

__all__ = ["SensorInterpreter", "TrafficSensorGenerator",
           "READINGS_FILE", "DEVICES_FILE"]

READINGS_FILE = "sensor_readings"
DEVICES_FILE = "sensor_devices"

#: field aliases across firmware generations, canonical name first
_ALIASES = {
    "device_id": ("device_id", "dev"),
    "ts": ("ts",),
    "speed_kmh": ("speed_kmh", "spd"),
    "volume": ("volume", "vol"),
    "occupancy_pct": ("occupancy_pct",),
    "battery_v": ("battery_v",),
    "reading_id": ("reading_id", "rid"),
}


class SensorInterpreter(Interpreter):
    """Canonical view over drifting sensor-record shapes.

    Missing fields interpret to ``None`` (schema-on-read: legacy
    records simply lack occupancy/battery telemetry).
    """

    def interpret(self, record: Record) -> Mapping[str, Any]:
        data = record.data if isinstance(record.data, Mapping) else {}
        view = {}
        for canonical, names in _ALIASES.items():
            for name in names:
                if name in data:
                    view[canonical] = data[name]
                    break
            else:
                view[canonical] = None
        return view


class TrafficSensorGenerator:
    """Deterministic streaming source for the sensor lake.

    Args:
        num_sensors: fleet size.
        seed: RNG seed; every stream derives from it.
        batch_period: seconds of event time each readings batch spans.
        drift_after: fraction of the fleet already on modern firmware
            at batch 0; the rest upgrade as batches progress.
        late_prob: chance a reading is a buffered (late) upload.
        max_lateness: how far behind event time a late reading can be.
    """

    def __init__(self, num_sensors: int = 64, seed: int = 0, *,
                 batch_period: float = 30.0, drift_after: float = 0.3,
                 late_prob: float = 0.08,
                 max_lateness: float = 240.0) -> None:
        self.num_sensors = num_sensors
        self.batch_period = batch_period
        self.drift_after = drift_after
        self.late_prob = late_prob
        self.max_lateness = max_lateness
        self._rng = make_rng(seed, "iot")
        self._next_reading = 0
        self._high_mark: Optional[float] = None

    # -- bootstrap records (the load-once seed of the lake) --------------

    def initial_devices(self) -> list[Record]:
        """One status record per device — the upsert target file."""
        return [Record({"device_id": f"dev-{i:04d}",
                        "battery_v": round(12.0 + self._rng.random(), 2),
                        "status": "ok", "reported_at": 0.0})
                for i in range(self.num_sensors)]

    def initial_readings(self, count: int) -> list[Record]:
        """A small historical backlog, all in the modern shape."""
        return [self._reading(modern=True, event_time=0.0)
                for _ in range(count)]

    # -- streaming batches -----------------------------------------------

    def readings_batch(self, index: int, batch_size: int) -> MicroBatch:
        """Batch ``index`` of appended readings (late ones included)."""
        event_time = (index + 1) * self.batch_period
        modern_share = min(
            1.0, self.drift_after + index * 0.05 * (1 - self.drift_after))
        records, late = [], 0
        for _ in range(batch_size):
            ts = event_time - self._rng.random() * self.batch_period
            if self._rng.random() < self.late_prob:
                ts -= self._rng.random() * self.max_lateness
            if self._high_mark is not None and ts <= self._high_mark:
                late += 1
            records.append(self._reading(
                modern=self._rng.random() < modern_share, event_time=ts))
        self._high_mark = (event_time if self._high_mark is None
                           else max(self._high_mark, event_time))
        return MicroBatch(READINGS_FILE, appends=records,
                          event_time=event_time, late_count=late)

    def status_batch(self, index: int, devices: int = 8) -> MicroBatch:
        """Periodic device-status upserts: newest report per device wins."""
        event_time = (index + 1) * self.batch_period
        chosen = self._rng.sample(range(self.num_sensors),
                                  min(devices, self.num_sensors))
        records = [Record({"device_id": f"dev-{i:04d}",
                           "battery_v": round(9.0 + 4 * self._rng.random(), 2),
                           "status": ("low" if self._rng.random() < 0.2
                                      else "ok"),
                           "reported_at": event_time})
                   for i in sorted(chosen)]
        return MicroBatch(DEVICES_FILE, upserts=records,
                          event_time=event_time)

    # -- internals -------------------------------------------------------

    def _reading(self, modern: bool, event_time: float) -> Record:
        rid = self._next_reading
        self._next_reading += 1
        device = self._rng.randrange(self.num_sensors)
        speed = round(max(0.0, self._rng.gauss(52.0, 14.0)), 1)
        volume = self._rng.randrange(0, 40)
        if modern:
            return Record({"reading_id": rid,
                           "device_id": f"dev-{device:04d}",
                           "ts": event_time,
                           "speed_kmh": speed,
                           "volume": volume,
                           "occupancy_pct": round(
                               self._rng.random() * 100, 1),
                           "battery_v": round(
                               9.0 + 4 * self._rng.random(), 2)})
        return Record({"rid": rid,
                       "dev": f"dev-{device:04d}",
                       "ts": event_time,
                       "spd": speed,
                       "vol": volume})
