"""Synthetic dataset generators: TPC-H, Japanese insurance claims, and
the streaming IoT traffic-sensor feed."""

from repro.datagen.claims import (
    ClaimInterpreter,
    ClaimsGenerator,
    DISEASE_CODES,
    DISEASE_PROFILES,
    MEDICINE_CODES,
    claim_id_of,
    disease_codes_of,
    medicine_codes_of,
)
from repro.datagen.fhir import (
    FhirBundleInterpreter,
    FhirGenerator,
    bundle_id_of,
    condition_codes_of,
    medication_codes_of,
)
from repro.datagen.iot import (
    DEVICES_FILE,
    READINGS_FILE,
    SensorInterpreter,
    TrafficSensorGenerator,
)
from repro.datagen.rng import make_rng, random_phrase
from repro.datagen.tpch import NATIONS, REGION_NAMES, TABLE_NAMES, \
    TpchGenerator

__all__ = [
    "ClaimInterpreter",
    "ClaimsGenerator",
    "DISEASE_CODES",
    "DISEASE_PROFILES",
    "MEDICINE_CODES",
    "claim_id_of",
    "disease_codes_of",
    "medicine_codes_of",
    "FhirBundleInterpreter",
    "FhirGenerator",
    "bundle_id_of",
    "condition_codes_of",
    "medication_codes_of",
    "DEVICES_FILE",
    "READINGS_FILE",
    "SensorInterpreter",
    "TrafficSensorGenerator",
    "make_rng",
    "random_phrase",
    "NATIONS",
    "REGION_NAMES",
    "TABLE_NAMES",
    "TpchGenerator",
]
