"""A plain data-lake engine: schema-on-read full scans, static parallelism.

The case study's approach (2): "storing [the claims] in a raw form in a
data lake system ... provided slow performance due to a full data scan with
the statically defined parallelism based on the data lake system."  Figure
9's footnote omits it "because it was a lot slower than the others" — the
benchmark harness includes it anyway to substantiate that footnote: its
record accesses always equal the whole dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.cluster.cluster import Cluster
from repro.core.interpreters import Interpreter
from repro.core.records import Record
from repro.storage.blockstore import BlockStore

__all__ = ["DataLakeEngine", "DataLakeResult"]

Predicate = Callable[[Mapping], bool]


@dataclass
class DataLakeResult:
    rows: list[Mapping]
    record_accesses: int
    bytes_scanned: int
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.rows)


class DataLakeEngine:
    """Full-scan query execution over raw records in a block store."""

    def __init__(self, store: BlockStore, interpreter: Interpreter,
                 cluster: Optional[Cluster] = None) -> None:
        self.store = store
        self.interpreter = interpreter
        self.cluster = cluster

    def query(self, table: str, predicate: Predicate) -> DataLakeResult:
        """Scan ``table``, interpret every record, keep matching views."""
        matches: list[Mapping] = []
        accesses = 0
        for record in self.store.scan(table):
            accesses += 1
            view = self.interpreter.interpret(record)
            if predicate(view):
                matches.append(view)
        nbytes = self.store.file_bytes(table)
        elapsed = 0.0
        if self.cluster is not None:
            elapsed = self._charge_scan(table)
        return DataLakeResult(matches, accesses, nbytes, elapsed)

    def _charge_scan(self, table: str) -> float:
        """Simulated cost: each node scans its local blocks in parallel,
        interpreting rows on its (statically parallel) cores."""
        cluster = self.cluster
        assert cluster is not None

        def scan_on(node_id: int):
            node = cluster.node(node_id)
            for block in self.store.blocks_on_node(table, node_id):
                yield from node.disk.sequential_read(block.nbytes)
                yield from node.compute(
                    len(block) * node.spec.tuple_cpu_time
                    / node.spec.cores)

        def scan_job():
            procs = [cluster.launch(scan_on(n), name=f"lake-scan@{n}")
                     for n in range(cluster.num_nodes)]
            yield cluster.sim.all_of(procs)

        __, elapsed = cluster.run_job(scan_job(), name=f"lake:{table}")
        return elapsed
