"""Baseline systems: the Impala-like scan engine (grace hash joins, static
parallelism), the normalized claims warehouse, and the plain data-lake
full-scan engine."""

from repro.baselines.datalake import DataLakeEngine, DataLakeResult
from repro.baselines.hashjoin import HashJoinStats, join_rows
from repro.baselines.scan_engine import (
    HashJoinNode,
    ScanEngine,
    ScanNode,
    ScanResult,
)
from repro.baselines.warehouse import ClaimsWarehouse

__all__ = [
    "DataLakeEngine",
    "DataLakeResult",
    "HashJoinStats",
    "join_rows",
    "HashJoinNode",
    "ScanEngine",
    "ScanNode",
    "ScanResult",
    "ClaimsWarehouse",
]
