"""An Impala-like scan engine: the data-lake baseline of Figure 7.

"Impala is a query engine focusing on analytical workloads and not
supporting indexes" — so every table access is a full scan of the HDFS-like
block store, joins are grace hash joins, and parallelism is *static*: the
cores of each node ("dozens of statically defined parallelism (usually
matching the number of CPU cores) in each computing node").

Plans are small operator trees (:class:`ScanNode` / :class:`HashJoinNode`).
Execution is phase-serial (scan or join at a time), each phase parallel
across nodes — a faithful-enough skeleton of a vectorized scan engine whose
runtime is dominated by scan bandwidth plus join CPU/shuffle, flat-ish in
predicate selectivity.  The data plane is real: answers are checked against
the reference executor in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.baselines.hashjoin import HashJoinStats, join_rows
from repro.cluster.cluster import Cluster
from repro.core.interpreters import Interpreter, MappingInterpreter
from repro.core.records import estimate_size
from repro.errors import ExecutionError
from repro.storage.blockstore import BlockStore

__all__ = ["ScanNode", "HashJoinNode", "ScanEngine", "ScanResult"]

Row = dict[str, Any]
Predicate = Callable[[Row], bool]


@dataclass
class ScanNode:
    """Scan a block-store table, filter, and emit row dicts."""

    table: str
    predicate: Optional[Predicate] = None
    interpreter: Interpreter = field(default_factory=MappingInterpreter)


@dataclass
class HashJoinNode:
    """Grace hash join of two sub-plans on an equality key."""

    build: "PlanNode"
    probe: "PlanNode"
    build_key: Callable[[Row], Any]
    probe_key: Callable[[Row], Any]
    residual: Optional[Predicate] = None


PlanNode = Union[ScanNode, HashJoinNode]


@dataclass
class ScanEngineMetrics:
    """Cost accounting for one baseline query."""

    bytes_scanned: int = 0
    rows_scanned: int = 0
    bytes_shuffled: int = 0
    tuples_processed: int = 0
    joins: list[HashJoinStats] = field(default_factory=list)
    elapsed_seconds: float = 0.0


@dataclass
class ScanResult:
    rows: list[Row]
    metrics: ScanEngineMetrics

    def __len__(self) -> int:
        return len(self.rows)


class ScanEngine:
    """Executes scan/hash-join plans over a block store on the cluster."""

    def __init__(self, cluster: Cluster, store: BlockStore,
                 memory_per_node: int = 64 * 1024 ** 3) -> None:
        self.cluster = cluster
        self.store = store
        self.memory_per_node = memory_per_node

    def execute(self, plan: PlanNode,
                max_time: Optional[float] = None) -> ScanResult:
        metrics = ScanEngineMetrics()
        holder: dict[str, list[Row]] = {}

        def query_process():
            rows = yield from self._execute_node(plan, metrics)
            holder["rows"] = rows

        __, elapsed = self.cluster.run_job(query_process(),
                                           name="scan-engine",
                                           max_time=max_time)
        metrics.elapsed_seconds = elapsed
        return ScanResult(holder["rows"], metrics)

    # -- operators ---------------------------------------------------------

    def _execute_node(self, node: PlanNode, metrics: ScanEngineMetrics):
        if isinstance(node, ScanNode):
            rows = yield from self._scan(node, metrics)
            return rows
        if isinstance(node, HashJoinNode):
            rows = yield from self._join(node, metrics)
            return rows
        raise ExecutionError(f"unknown plan node {node!r}")

    def _scan(self, node: ScanNode, metrics: ScanEngineMetrics):
        """Every node scans its local blocks in parallel; filters on cores."""
        cluster = self.cluster
        per_node_rows: list[list[Row]] = [[] for __ in range(cluster.num_nodes)]

        def scan_on(node_id: int):
            sim_node = cluster.node(node_id)
            blocks = self.store.blocks_on_node(node.table, node_id)
            for block in blocks:
                metrics.bytes_scanned += block.nbytes
                metrics.rows_scanned += len(block)
                yield from sim_node.disk.sequential_read(block.nbytes)
                yield from self._charge_tuples(node_id, len(block))
                for record in block.records:
                    row = dict(node.interpreter.interpret(record))
                    if node.predicate is None or node.predicate(row):
                        per_node_rows[node_id].append(row)

        procs = [cluster.launch(scan_on(n), name=f"scan@{n}")
                 for n in range(cluster.num_nodes)]
        yield cluster.sim.all_of(procs)
        rows: list[Row] = []
        for node_rows in per_node_rows:
            rows.extend(node_rows)
        return rows

    def _join(self, node: HashJoinNode, metrics: ScanEngineMetrics):
        build_rows = yield from self._execute_node(node.build, metrics)
        probe_rows = yield from self._execute_node(node.probe, metrics)

        # Grace partition phase: both inputs shuffle across the cluster.
        yield from self._charge_shuffle(build_rows, metrics)
        yield from self._charge_shuffle(probe_rows, metrics)

        output, stats = join_rows(build_rows, probe_rows, node.build_key,
                                  node.probe_key, node.residual)
        metrics.joins.append(stats)

        # Build + probe + emit CPU, spread across every node's cores.
        total_tuples = (stats.build_rows + stats.probe_rows
                        + stats.output_rows)
        yield from self._charge_tuples_all_nodes(total_tuples)
        return output

    # -- cost helpers --------------------------------------------------------

    def _charge_tuples(self, node_id: int, count: int):
        """CPU for ``count`` tuples with static core-level parallelism."""
        metrics_node = self.cluster.node(node_id)
        cores = metrics_node.spec.cores
        yield from metrics_node.compute(
            count * metrics_node.spec.tuple_cpu_time / cores)

    def _charge_tuples_all_nodes(self, count: int):
        cluster = self.cluster
        share = count // cluster.num_nodes + 1

        def work(node_id: int):
            yield from self._charge_tuples(node_id, share)

        procs = [cluster.launch(work(n), name=f"join@{n}")
                 for n in range(cluster.num_nodes)]
        yield cluster.sim.all_of(procs)

    def _charge_shuffle(self, rows: list[Row],
                        metrics: ScanEngineMetrics):
        """Hash-repartition cost: each node ships (N-1)/N of its share."""
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        if num_nodes == 1 or not rows:
            return
        total_bytes = sum(estimate_size(row) for row in rows)
        out_per_node = int(total_bytes / num_nodes
                           * (num_nodes - 1) / num_nodes)
        metrics.bytes_shuffled += out_per_node * num_nodes

        def send_from(node_id: int):
            dst = (node_id + 1) % num_nodes  # representative peer
            yield from cluster.network.transfer(node_id, dst, out_per_node)

        procs = [cluster.launch(send_from(n), name=f"shuffle@{n}")
                 for n in range(num_nodes)]
        yield cluster.sim.all_of(procs)
