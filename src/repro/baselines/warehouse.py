"""A normalized data warehouse over the insurance claims — Figure 9's
comparator.

The paper's case study tried "(1) normalizing the data based on the
relational model and storing it in a data warehouse system that employs
fine-grained massively parallel execution" and found "performance penalties
due to intensive joins of normalized data".  Both systems use fine-grained
MPE, so the comparison axis is the **number of record accesses**.

:class:`ClaimsWarehouse` performs that normalization (one scalar row per
claim plus child tables for the repeated SY/SI/IY sub-records), builds the
indexes a warehouse would use, and answers the three analytical queries
with parallel index nested-loop joins *expressed as Reference-Dereference
jobs* executed on the same engines — which makes the record-access
comparison apples-to-apples by construction: the only difference is the
data model.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.core.catalog import AccessMethodDefinition, StructureCatalog
from repro.core.functions import (
    FileLookupDereferencer,
    IndexEntryReferencer,
    IndexLookupDereferencer,
    KeyReferencer,
)
from repro.core.interpreters import MappingInterpreter, PredicateFilter
from repro.core.job import Job, JobBuilder
from repro.core.pointers import Pointer
from repro.core.records import Record
from repro.datagen.claims import ClaimInterpreter
from repro.engine.executor import ReDeExecutor
from repro.engine.metrics import JobResult
from repro.storage.dfs import DistributedFileSystem

__all__ = ["ClaimsWarehouse"]

_INTERP = MappingInterpreter()


class ClaimsWarehouse:
    """Normalized relational storage + INLJ query plans for claims."""

    def __init__(self, claims: Iterable[Record], num_nodes: int = 4,
                 cluster: Optional[Cluster] = None,
                 mode: str = "reference") -> None:
        self.dfs = DistributedFileSystem(num_nodes=num_nodes)
        self.catalog = StructureCatalog(self.dfs)
        self.executor = ReDeExecutor(cluster, self.catalog, mode=mode)
        self._normalize(claims)
        self._register_indexes()

    # -- ETL ---------------------------------------------------------------

    def _normalize(self, claims: Iterable[Record]) -> None:
        """The relational decomposition a warehouse schema forces."""
        interp = ClaimInterpreter()
        claim_rows, disease_rows, medicine_rows, treatment_rows = \
            [], [], [], []
        for record in claims:
            view = interp.interpret(record)
            claim_id = view["claim_id"]
            claim_rows.append(Record({
                "claim_id": claim_id,
                "hospital_id": view.get("hospital_id"),
                "claim_type": view.get("claim_type"),
                "billing_month": view.get("billing_month"),
                "patient_id": view.get("patient_id"),
                "category": view.get("category"),
                "total_points": view.get("total_points", 0),
            }))
            for seq, code in enumerate(view.get("diseases", [])):
                disease_rows.append(Record({
                    "claim_id": claim_id, "seq": seq, "code": code}))
            for seq, code in enumerate(view.get("medicines", [])):
                medicine_rows.append(Record({
                    "claim_id": claim_id, "seq": seq, "code": code,
                    "points": view.get("medicine_points", {}).get(code, 0)}))
            for seq, code in enumerate(view.get("treatments", [])):
                treatment_rows.append(Record({
                    "claim_id": claim_id, "seq": seq, "code": code}))

        def child_key(row: Record):
            return (row["claim_id"], row["seq"])

        self.catalog.register_file("dw_claims", claim_rows,
                                   lambda r: r["claim_id"])
        self.catalog.register_file("dw_diseases", disease_rows,
                                   lambda r: r["claim_id"],
                                   key_fn=child_key)
        self.catalog.register_file("dw_medicines", medicine_rows,
                                   lambda r: r["claim_id"],
                                   key_fn=child_key)
        self.catalog.register_file("dw_treatments", treatment_rows,
                                   lambda r: r["claim_id"],
                                   key_fn=child_key)

    def _register_indexes(self) -> None:
        # The secondary index the predicate needs...
        self.catalog.register_access_method(AccessMethodDefinition(
            name="dw_idx_disease_code", base_file="dw_diseases",
            interpreter=_INTERP, key_field="code", scope="global"))
        # ...and the join index from claims to their medicines.
        self.catalog.register_access_method(AccessMethodDefinition(
            name="dw_idx_medicine_claim", base_file="dw_medicines",
            interpreter=_INTERP, key_field="claim_id", scope="global"))
        self.catalog.build_all()

    # -- query plans ---------------------------------------------------------

    def expenses_job(self, disease_codes: Sequence[str],
                     medicine_codes: Sequence[str]) -> Job:
        """The INLJ chain normalization forces.

        diseases-index probe -> disease row -> medicines-of-claim index
        probe -> medicine rows (filter by code) -> claims row.  Every hop
        is a record access the nested raw format would not pay.
        """
        medicine_set = set(medicine_codes)
        medicine_filter = PredicateFilter(
            lambda record, __: record.get("code") in medicine_set,
            name="medicine-code")
        builder = (
            JobBuilder("dw_expenses")
            .dereference(IndexLookupDereferencer("dw_idx_disease_code"))
            .reference(IndexEntryReferencer("dw_diseases"))
            .dereference(FileLookupDereferencer("dw_diseases"))
            .reference(KeyReferencer("dw_idx_medicine_claim", _INTERP,
                                     "claim_id"))
            .dereference(IndexLookupDereferencer("dw_idx_medicine_claim"))
            .reference(IndexEntryReferencer("dw_medicines"))
            .dereference(FileLookupDereferencer("dw_medicines",
                                                filter=medicine_filter))
            .reference(KeyReferencer("dw_claims", _INTERP, "claim_id"))
            .dereference(FileLookupDereferencer("dw_claims"))
        )
        for code in disease_codes:
            builder.input(Pointer("dw_idx_disease_code", code, code))
        return builder.build()

    def query_expenses(self, disease_codes: Sequence[str],
                       medicine_codes: Sequence[str]
                       ) -> tuple[float, JobResult]:
        """Total expenses over distinct matching claims, plus the metrics."""
        result = self.executor.execute(
            self.expenses_job(disease_codes, medicine_codes))
        seen: set = set()
        total = 0.0
        for row in result.rows:
            claim_id = row.record.get("claim_id")
            if claim_id in seen:
                continue
            seen.add(claim_id)
            total += row.record.get("total_points", 0)
        return total, result
