"""Grace hash join: the data plane and the cost model.

The paper's baseline "executed the query using (grace) hash joins".  The
data plane here is a real hash join over row dictionaries (so baseline
answers are verifiably correct); the cost model charges what a distributed
grace join pays on the simulated cluster:

* **shuffle** — both inputs hash-partition across nodes; each node sends
  ``(N-1)/N`` of its share over its NIC;
* **build** — the smaller input is hashed, one CPU charge per tuple;
* **probe + emit** — one CPU charge per probe tuple and per output row.

Build sides larger than the per-node memory budget would spill in a real
grace join; the budget is tracked and reported, though at laptop scale the
joins stay in memory (as they effectively did for Impala on 64 GB nodes).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.records import estimate_size

__all__ = ["join_rows", "HashJoinStats"]

Row = dict[str, Any]
KeyFn = Callable[[Row], Any]


@dataclass
class HashJoinStats:
    """What one hash join did, for cost charging and reporting."""

    build_rows: int = 0
    probe_rows: int = 0
    output_rows: int = 0
    build_bytes: int = 0
    probe_bytes: int = 0
    output_bytes: int = 0


def join_rows(build: list[Row], probe: list[Row], build_key: KeyFn,
              probe_key: KeyFn,
              residual: Optional[Callable[[Row], bool]] = None
              ) -> tuple[list[Row], HashJoinStats]:
    """Equi-join ``build`` x ``probe``; returns merged rows and stats.

    Output rows merge probe fields over build fields (probe wins on name
    clashes, which never occur with TPC-H's prefixed column names).  The
    optional ``residual`` predicate filters merged rows — how non-equi
    conjuncts (e.g. Q5's ``c_nationkey = s_nationkey``) apply after the
    equi-join.
    """
    stats = HashJoinStats(build_rows=len(build), probe_rows=len(probe))
    table: dict[Any, list[Row]] = defaultdict(list)
    for row in build:
        stats.build_bytes += estimate_size(row)
        key = build_key(row)
        if key is not None:
            table[key].append(row)
    output: list[Row] = []
    for row in probe:
        stats.probe_bytes += estimate_size(row)
        for match in table.get(probe_key(row), ()):
            merged = {**match, **row}
            if residual is not None and not residual(merged):
                continue
            output.append(merged)
    stats.output_rows = len(output)
    stats.output_bytes = sum(estimate_size(row) for row in output)
    return output, stats
