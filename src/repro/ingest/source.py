"""Arrival processes and micro-batch streams for the ingest path.

Everything runs on *simulated* time and seeded RNGs: a source is an
iterator of ``(gap_seconds, MicroBatch)`` pairs, and the driver (CLI,
benchmark, or test) decides what to do with the gaps — usually sleep
them on the cluster's event loop, then hand the batch to the
:class:`~repro.ingest.coordinator.IngestCoordinator`.

Two arrival shapes cover the experiments:

* :func:`poisson_gaps` — open-loop Poisson arrivals, the steady-state
  regime of the serving benchmarks;
* :func:`bursty_gaps` — on/off modulated Poisson (duty-cycled), the
  "sensor feed uploads every few minutes" regime of the civic-lake
  workload this PR mines for its third dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.core.records import Record
from repro.datagen.rng import make_rng

__all__ = ["MicroBatch", "poisson_gaps", "bursty_gaps", "batch_stream"]


@dataclass
class MicroBatch:
    """One atomic unit of ingest: appends and upserts for one base file.

    Attributes:
        file_name: the base file the batch lands in.
        appends: brand-new records.
        upserts: replacement versions — each supersedes every record
            sharing its in-partition key (newest wins).
        event_time: the batch's event-time high mark; drives the
            freshness watermark.
        late_count: records the source knows arrived late (event time
            at or below the watermark of their emission).
    """

    file_name: str
    appends: list[Record] = field(default_factory=list)
    upserts: list[Record] = field(default_factory=list)
    event_time: float = 0.0
    late_count: int = 0

    def __len__(self) -> int:
        return len(self.appends) + len(self.upserts)


def poisson_gaps(rate: float, duration: float, seed: int = 0,
                 stream: str = "ingest") -> Iterator[float]:
    """Exponential inter-arrival gaps at ``rate``/s for ``duration``s."""
    if rate <= 0:
        return
    rng = make_rng(seed, stream)
    elapsed = 0.0
    while True:
        gap = rng.expovariate(rate)
        elapsed += gap
        if elapsed > duration:
            return
        yield gap


def bursty_gaps(rate: float, duration: float, seed: int = 0, *,
                period: float = 60.0, duty: float = 0.25,
                burst_factor: float = 8.0,
                stream: str = "ingest-burst") -> Iterator[float]:
    """On/off modulated Poisson arrivals.

    Each ``period`` splits into a burst window (fraction ``duty``, rate
    ``rate * burst_factor``) and a quiet window (rate scaled down so the
    long-run average stays ``rate``).  Sensor fleets upload this way:
    synchronized bursts on the five-minute mark, near silence between.
    """
    if rate <= 0:
        return
    rng = make_rng(seed, stream)
    quiet_scale = max(1e-9, (1.0 - duty * burst_factor) / (1.0 - duty))
    elapsed = 0.0
    while True:
        phase = elapsed % period
        current = (rate * burst_factor if phase < period * duty
                   else rate * quiet_scale)
        gap = rng.expovariate(current)
        elapsed += gap
        if elapsed > duration:
            return
        yield gap


def batch_stream(gaps: Iterator[float],
                 make_batch: Callable[[int, float], Optional[MicroBatch]]
                 ) -> Iterator[tuple[float, MicroBatch]]:
    """Pair an arrival process with a batch factory.

    ``make_batch(index, arrival_time)`` builds the batch arriving at
    cumulative time ``arrival_time``; returning ``None`` ends the
    stream early (source exhausted).
    """
    elapsed = 0.0
    for i, gap in enumerate(gaps):
        elapsed += gap
        batch = make_batch(i, elapsed)
        if batch is None:
            return
        yield gap, batch
