"""Freshness watermarks for the streaming ingest path.

A continuously-fed lake answers every query against a *version* of the
data: everything committed through some event time, nothing after it.
The watermark names that version.  It is stamped onto every job's
:class:`~repro.engine.metrics.ExecutionMetrics` at submission, so
experiments can plot staleness against compaction aggressiveness and
query interference (ISSUE 7 / ROADMAP open item 1).

Semantics are deliberately simple, in the reproduction's spirit: the
watermark is the largest *event time* among committed micro-batches.
Records arriving with an event time at or below the current watermark
are *late arrivals* — they are still ingested (appends are never
dropped), but counted, because a real pipeline would route them through
a correction path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FreshnessWatermark"]


@dataclass(frozen=True)
class FreshnessWatermark:
    """A snapshot of ingest progress, as observed by one query.

    Attributes:
        committed_through: largest event time across committed batches
            (``None`` before the first commit).
        committed_batches: micro-batches fully committed (queryable).
        pending_batches: micro-batches staged or mid-flush — their
            records are *not* visible to queries yet.
        delta_runs: unmerged delta runs currently backing queries (the
            per-probe overhead compaction exists to bound).
        last_commit_at: simulated time of the latest commit (``None``
            before the first commit).
        late_records: records that arrived with an event time at or
            below the watermark of their day.
    """

    committed_through: Optional[float] = None
    committed_batches: int = 0
    pending_batches: int = 0
    delta_runs: int = 0
    last_commit_at: Optional[float] = None
    late_records: int = 0

    def staleness(self, now: float) -> Optional[float]:
        """Seconds of simulated time since the last commit."""
        if self.last_commit_at is None:
            return None
        return max(0.0, now - self.last_commit_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FreshnessWatermark(through={self.committed_through!r}, "
                f"committed={self.committed_batches}, "
                f"pending={self.pending_batches}, "
                f"runs={self.delta_runs})")
