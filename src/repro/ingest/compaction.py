"""Tiered delta→base compaction, runnable as gateway background work.

Two tiers bound the per-probe delta overhead:

* **minor** — fold a base file's runs (and each of its indexes' runs)
  into one merged run apiece.  Cheap: only delta bytes move, the heap
  and trees are untouched.  Probe depth drops to 1.
* **major** — rewrite the base heap partitions (applying newest-wins
  upserts, appending delta records) and bulk-rebuild every materialized
  index from the new heap with physical entries, exactly as the DFS
  builds them.  Probe depth drops to 0: the lake is static again and
  the delta-aware query path returns to its bit-identical passthrough.

Both are process generators charged through the cluster before any
data-plane mutation (charge-then-atomic-commit, as PR 4's builds), so a
crash mid-compaction leaves the runs in place and the structures
queryable; major compaction checkpoints per base partition in the
:class:`~repro.ingest.delta.DeltaRegistry` so a resumed pass pays only
the remainder.  Submitted through the PR-5 ``QueryGateway`` background
lane they are subject to admission control and shedding like any other
maintenance work.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.core.catalog import StructureCatalog
from repro.core.pointers import PointerKind
from repro.errors import NodeCrashed, ReproError
from repro.ingest.delta import merge_runs
from repro.storage.files import IndexEntry, PartitionedFile
from repro.storage.heapfile import HeapFile

__all__ = ["CompactionPolicy", "Compactor"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold deltas back into base structures.

    ``minor_after``/``major_after`` are run-count thresholds on the
    *base file* (each committed batch adds one run there).  Mode
    ``"none"`` never compacts — the degradation baseline.
    """

    mode: str = "lazy"
    minor_after: int = 4
    major_after: int = 8

    @classmethod
    def none(cls) -> "CompactionPolicy":
        return cls(mode="none", minor_after=0, major_after=0)

    @classmethod
    def lazy(cls) -> "CompactionPolicy":
        return cls(mode="lazy", minor_after=4, major_after=8)

    @classmethod
    def eager(cls) -> "CompactionPolicy":
        return cls(mode="eager", minor_after=2, major_after=3)

    def due(self, depth: int) -> Optional[str]:
        """The compaction tier a run depth calls for, if any."""
        if self.mode == "none" or depth <= 0:
            return None
        if self.major_after and depth >= self.major_after:
            return "major"
        if self.minor_after and depth >= self.minor_after:
            return "minor"
        return None


class Compactor:
    """Plans and executes delta→base merges for one catalog."""

    def __init__(self, catalog: StructureCatalog,
                 cluster: Optional[Cluster] = None,
                 policy: Optional[CompactionPolicy] = None) -> None:
        self.catalog = catalog
        self.cluster = cluster
        self.policy = policy or CompactionPolicy.lazy()
        self.minor_compactions = 0
        self.major_compactions = 0

    # -- planning --------------------------------------------------------

    def _registry(self):
        registry = self.catalog.delta_registry
        if registry is None:
            raise ReproError("no delta registry attached to the catalog")
        return registry

    def base_files_with_runs(self) -> list[str]:
        registry = self.catalog.delta_registry
        if registry is None:
            return []
        return [name for name in registry.structures()
                if isinstance(self.catalog.dfs.get(name), PartitionedFile)]

    def due(self) -> list[tuple[str, str]]:
        """(base file, tier) pairs the policy wants compacted now."""
        return [(name, tier) for name in self.base_files_with_runs()
                for tier in [self.policy.due(
                    self.catalog.delta_depth(name))]
                if tier is not None]

    # -- execution -------------------------------------------------------

    def compaction_job(self, file_name: str, tier: str):
        """Process generator for one charged (resumable) compaction."""
        assert self.cluster is not None
        if tier == "minor":
            yield from self._minor_job(file_name)
        elif tier == "major":
            yield from self._major_job(file_name)
        else:
            raise ReproError(f"unknown compaction tier {tier!r}")

    def compact(self, file_name: str, tier: str) -> float:
        """Run one compaction; returns simulated seconds.

        Clusterless, commits immediately and free — the reference path
        the equivalence tests drive.
        """
        if self.cluster is None:
            if tier == "minor":
                self._commit_minor(file_name)
            else:
                self._commit_major(file_name)
            return 0.0
        __, elapsed = self.cluster.run_job(
            self.compaction_job(file_name, tier),
            name=f"compact-{tier}:{file_name}")
        return elapsed

    def compact_due(self) -> float:
        return sum(self.compact(name, tier) for name, tier in self.due())

    # -- minor tier ------------------------------------------------------

    def _structures_with_runs(self, file_name: str) -> list[str]:
        """The base file plus its indexes, where runs exist."""
        registry = self._registry()
        names = [file_name] + [d.name for d in
                               self.catalog.definitions_over(file_name)]
        return [name for name in names if registry.depth(name) > 0]

    def _minor_job(self, file_name: str):
        cluster = self.cluster
        assert cluster is not None
        registry = self._registry()
        if registry.depth(file_name) <= 1:
            return  # nothing to fold (or a concurrent pass beat us)
        # Read + write every delta byte, on the node owning each
        # structure partition the runs touch.
        per_node: dict[int, int] = {}
        for name in self._structures_with_runs(file_name):
            structure = self.catalog.dfs.get(name)
            for run in registry.runs(name):
                for pid in run.partitions():
                    node = structure.node_of(pid)
                    per_node[node] = (per_node.get(node, 0)
                                      + run.partition_bytes(pid))

        def node_merge(node_id: int):
            try:
                node = cluster.node(cluster.serving_node(node_id))
                nbytes = per_node.get(node_id, 0)
                if nbytes:
                    yield from node.disk.sequential_read(2 * nbytes)
            except NodeCrashed:
                return

        procs = [cluster.launch(node_merge(n), name=f"compact@{n}")
                 for n in range(cluster.num_nodes)]
        yield cluster.sim.all_of(procs)
        self._commit_minor(file_name)

    def _commit_minor(self, file_name: str) -> None:
        registry = self._registry()
        folded = 0
        for name in self._structures_with_runs(file_name):
            runs = registry.runs(name)
            if len(runs) <= 1:
                continue
            folded += len(runs)
            registry.replace_runs(name, [merge_runs(runs)])
        if folded:
            self.minor_compactions += 1
            # A fold rewrites the delta runs behind the base *and* every
            # maintained index over it: any cached page or semantic
            # result derived from those runs is stale.  Mirror
            # ``Catalog.insert_record`` — invalidate the base file and
            # each maintained index, not just the base.
            self.catalog.invalidate_cached(file_name)
            for name in self.catalog.maintained_structures(file_name):
                self.catalog.invalidate_cached(name)
            logger.info("minor compaction folded %d runs over %r",
                        folded, file_name)

    # -- major tier ------------------------------------------------------

    def _major_job(self, file_name: str):
        cluster = self.cluster
        assert cluster is not None
        registry = self._registry()
        if registry.depth(file_name) == 0:
            return  # already folded (idempotent re-dispatch)
        base = self.catalog.dfs.get_base(file_name)
        runs = registry.runs(file_name)
        done = registry.compaction_checkpoints.setdefault(file_name, set())
        indexes = [self.catalog.dfs.get_index(d.name)
                   for d in self.catalog.definitions_over(file_name)
                   if d.name in self.catalog.dfs]

        def node_rewrite(node_id: int):
            try:
                node = cluster.node(cluster.serving_node(node_id))
                for pid in base.partitions_on_node(node_id):
                    if pid in done:
                        continue
                    nbytes = base.partition_bytes(pid) + sum(
                        run.partition_bytes(pid) for run in runs)
                    rows = len(base.partitions[pid]) + sum(
                        run.partition_len(pid) for run in runs)
                    # read old heap + deltas, write merged heap back
                    yield from node.disk.sequential_read(2 * nbytes)
                    if rows:
                        yield from node.process_tuples(rows)
                    done.add(pid)
                # Index rebuilds: bulk-load every local tree partition.
                for index in indexes:
                    per_part = (index.total_bytes
                                // max(1, index.num_partitions))
                    nbytes = per_part * len(
                        index.partitions_on_node(node_id))
                    if nbytes:
                        yield from node.disk.sequential_read(2 * nbytes)
            except NodeCrashed:
                # Checkpointed partitions stay paid; a resumed pass
                # charges the remainder before committing.
                return

        procs = [cluster.launch(node_rewrite(n), name=f"compact@{n}")
                 for n in range(cluster.num_nodes)]
        yield cluster.sim.all_of(procs)
        if all(pid in done for pid in range(base.num_partitions)):
            self._commit_major(file_name)
        else:
            logger.warning(
                "major compaction of %r interrupted after %d/%d partitions",
                file_name, len(done), base.num_partitions)

    def _commit_major(self, file_name: str) -> None:
        """Atomic data-plane rewrite: merged heap, rebuilt trees."""
        registry = self._registry()
        base = self.catalog.dfs.get_base(file_name)
        loader = self.catalog.dfs.loader_info(file_name)
        runs = registry.runs(file_name)
        if not runs:
            return
        for pid, heap in enumerate(base.partitions):
            merged: list[tuple] = []
            dead: set = set()
            for run in runs:
                dead |= run.upserts.get(pid, frozenset())
            for record in heap.scan():
                key = loader.key_fn(record)
                if key in dead:
                    continue
                merged.append((record, key, None))
            for i, run in enumerate(runs):
                newer = runs[i + 1:]
                for key, payload, (base_pid, base_key), tag in run.items(pid):
                    if any(base_key in later.upserts.get(
                            base_pid, frozenset()) for later in newer):
                        continue
                    merged.append((payload, key, tag))
            fresh = HeapFile(name=heap.name)
            for record, key, tag in merged:
                slot = fresh.append(record, key=key)
                if tag is not None:
                    # Queries in flight across this fold still hold index
                    # entries targeting the delta tag.
                    fresh.alias(tag, slot)
            base.partitions[pid] = fresh
        # Every materialized index is rebuilt — appends add entries and
        # removed upsert victims shift heap slots, so even run-less
        # trees must be reloaded from the new heap.
        definitions = [d for d in self.catalog.definitions_over(file_name)
                       if d.name in self.catalog.dfs]
        for definition in definitions:
            index = self.catalog.dfs.get_index(definition.name)
            entries = []
            for pid, heap in enumerate(base.partitions):
                for slot, record in enumerate(heap.scan()):
                    base_pk = loader.partition_key_fn(record)
                    for index_key in definition.extract_keys(record):
                        entry = IndexEntry(index_key, base_pk, slot,
                                           kind=PointerKind.PHYSICAL)
                        placement_key = (base_pk
                                         if definition.scope == "local"
                                         else index_key)
                        entries.append((index_key, entry, placement_key))
            index.bulk_build(entries)
            registry.retire(definition.name)
            self.catalog.invalidate_cached(definition.name)
        registry.retire(file_name)
        self.catalog.invalidate_cached(file_name)
        self.major_compactions += 1
        logger.info("major compaction folded %d runs into %r",
                    len(runs), file_name)
