"""Streaming ingestion: delta segments, compaction, freshness.

The load-once lake becomes continuously fed: micro-batches of
appends/upserts arrive on simulated time (:mod:`repro.ingest.source`),
the :class:`~repro.ingest.coordinator.IngestCoordinator` commits them
as sorted delta runs (:mod:`repro.ingest.delta`) registered in the
catalog, queries probe base structures *plus* unmerged deltas with
newest-wins upsert semantics, and tiered background compaction
(:mod:`repro.ingest.compaction`) folds deltas back so the lake
converges to its static, bit-identical self.  Every job reports the
freshness watermark (:mod:`repro.ingest.watermark`) it observed.

Layering: ingest sits beside ``core``/``storage``/``cluster`` (like
``core.maintenance``, it yields simulated events but never imports the
engines or the service layer); the engines consume delta runs through
the catalog, and the service layer wraps ingest work in background-lane
adapters.
"""

from repro.ingest.compaction import CompactionPolicy, Compactor
from repro.ingest.coordinator import IngestBatch, IngestCoordinator
from repro.ingest.delta import DeltaRegistry, DeltaRun
from repro.ingest.source import (
    MicroBatch,
    batch_stream,
    bursty_gaps,
    poisson_gaps,
)
from repro.ingest.watermark import FreshnessWatermark

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "DeltaRegistry",
    "DeltaRun",
    "FreshnessWatermark",
    "IngestBatch",
    "IngestCoordinator",
    "MicroBatch",
    "batch_stream",
    "bursty_gaps",
    "poisson_gaps",
]
