"""The ingest control plane: staged micro-batches, charged flushes,
atomic commits.

A :class:`MicroBatch` moves through the PR-4 lifecycle states:

* ``PENDING`` — staged: accepted, invisible to queries;
* ``BUILDING`` — a flush charged part of its simulated IO and was
  interrupted (node crash); the per-partition checkpoint set records
  exactly what was paid for, and a later flush pays only the rest;
* ``READY`` — committed: one sealed :class:`~repro.ingest.delta.
  DeltaRun` per affected structure registered in the catalog's
  :class:`~repro.ingest.delta.DeltaRegistry`, watermark advanced.

The flush follows the charge-then-atomic-commit pattern of
:class:`~repro.core.maintenance.MaintenanceWorker`: all simulated cost
is paid first (per-node process generators, crash-tolerant per node),
and the data-plane mutation happens in one synchronous step at the end.
A crash mid-flush therefore leaves checkpointed partial state — never a
half-visible batch.
"""

from __future__ import annotations

import logging
from typing import Any, Optional

from repro.cluster.cluster import Cluster
from repro.core.catalog import StructureCatalog, StructureState
from repro.errors import NodeCrashed, ReproError
from repro.ingest.delta import (DeltaRegistry, DeltaRun, delta_tag,
                                index_placements)
from repro.ingest.source import MicroBatch
from repro.ingest.watermark import FreshnessWatermark
from repro.storage.files import IndexEntry

__all__ = ["IngestBatch", "IngestCoordinator"]

logger = logging.getLogger(__name__)


class IngestBatch:
    """One staged micro-batch and its flush lifecycle."""

    def __init__(self, batch_id: int, micro: MicroBatch) -> None:
        self.batch_id = batch_id
        self.micro = micro
        self.state = StructureState.PENDING
        #: base partitions whose flush IO is already charged
        self.checkpoints: set[int] = set()
        self.commit_time: Optional[float] = None

    @property
    def committed(self) -> bool:
        return self.state is StructureState.READY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IngestBatch(#{self.batch_id}, {self.micro.file_name!r}, "
                f"{len(self.micro)} records, {self.state.value})")


class IngestCoordinator:
    """Accepts micro-batches and turns them into committed delta runs."""

    def __init__(self, catalog: StructureCatalog,
                 cluster: Optional[Cluster] = None) -> None:
        self.catalog = catalog
        self.cluster = cluster
        registry = catalog.delta_registry
        if registry is None:
            registry = DeltaRegistry()
            catalog.attach_delta_registry(registry)
        self.registry: DeltaRegistry = registry
        if cluster is not None and catalog.cache_invalidator is None:
            catalog.cache_invalidator = cluster.invalidate_cached_file
        self.batches: list[IngestBatch] = []
        self._next_id = 0

    # -- staging ---------------------------------------------------------

    def stage(self, micro: MicroBatch) -> IngestBatch:
        """Accept a micro-batch; its records stay invisible until a
        flush commits it."""
        if micro.file_name not in self.catalog.dfs:
            raise ReproError(
                f"ingest into unknown base file {micro.file_name!r}")
        self.catalog.dfs.loader_info(micro.file_name)  # must be loadable
        batch = IngestBatch(self._next_id, micro)
        self._next_id += 1
        self.batches.append(batch)
        self.registry.pending_batches += 1
        return batch

    def pending(self) -> list[IngestBatch]:
        return [batch for batch in self.batches if not batch.committed]

    def watermark(self) -> FreshnessWatermark:
        return self.registry.watermark()

    # -- flushing --------------------------------------------------------

    def flush_job(self, batch: IngestBatch):
        """Process generator for one (possibly resumed) flush of
        ``batch``: charge per-partition write IO with checkpoints, then
        commit atomically.  Crash-tolerant per node, idempotent when the
        batch is already committed (safe to re-dispatch through the
        gateway's background lane)."""
        assert self.cluster is not None
        cluster = self.cluster
        if batch.committed:
            return
        batch.state = StructureState.BUILDING
        base = self.catalog.dfs.get_base(batch.micro.file_name)
        loader = self.catalog.dfs.loader_info(batch.micro.file_name)
        writes_per_record = 1 + len(self._maintained(batch.micro.file_name))
        counts: dict[int, int] = {}
        for record in batch.micro.appends + batch.micro.upserts:
            pid = base.partition_of_key(loader.partition_key_fn(record))
            counts[pid] = counts.get(pid, 0) + writes_per_record

        def node_flush(node_id: int):
            try:
                node = cluster.node(cluster.serving_node(node_id))
                for pid in base.partitions_on_node(node_id):
                    if pid not in counts or pid in batch.checkpoints:
                        continue
                    for __ in range(counts[pid]):
                        yield from node.disk.random_read()  # write ~ 1 IO
                    batch.checkpoints.add(pid)
            except NodeCrashed:
                # This node's share dies with it; already-checkpointed
                # partitions stay paid, the rest wait for a resumed flush.
                return

        procs = [cluster.launch(node_flush(n), name=f"ingest@{n}")
                 for n in range(cluster.num_nodes)]
        yield cluster.sim.all_of(procs)
        if all(pid in batch.checkpoints for pid in counts):
            self._commit(batch, now=cluster.sim.now)
        else:
            logger.warning(
                "flush of batch #%d interrupted after %d/%d partitions",
                batch.batch_id, len(batch.checkpoints), len(counts))

    def flush(self, batch: IngestBatch) -> float:
        """Flush one batch; returns simulated seconds (0.0 clusterless).

        With a cluster the flush runs on a fresh time window (the
        serving gateway's background lane runs :meth:`flush_job` inline
        on the shared timeline instead).  Without a cluster the commit
        is immediate and free — the reference path for tests.
        """
        if batch.committed:
            return 0.0
        if self.cluster is None:
            self._commit(batch, now=0.0)
            return 0.0
        __, elapsed = self.cluster.run_job(
            self.flush_job(batch), name=f"ingest:{batch.batch_id}")
        return elapsed

    def flush_pending(self) -> float:
        """Flush every staged batch in arrival order."""
        return sum(self.flush(batch) for batch in self.pending())

    # -- the atomic commit ----------------------------------------------

    def _maintained(self, file_name: str) -> list:
        """Materialized access methods over ``file_name``.

        Registered-but-unmaterialized definitions are skipped here: their
        build scans the base heap, which does not see delta records.  The
        gap is closed at materialization time — ``StructureCatalog.
        ensure_built`` backfills one index delta run per committed base
        run, so a structure built mid-stream answers fresh probes exactly
        like one maintained from the start.
        """
        return [definition
                for definition in self.catalog.definitions_over(file_name)
                if definition.name in self.catalog.dfs]

    def _commit(self, batch: IngestBatch, now: float) -> None:
        micro = batch.micro
        base = self.catalog.dfs.get_base(micro.file_name)
        loader = self.catalog.dfs.loader_info(micro.file_name)
        definitions = self._maintained(micro.file_name)
        indexes = [(d, self.catalog.dfs.get_index(d.name))
                   for d in definitions]

        base_run = DeltaRun(micro.file_name, micro.file_name,
                            batch.batch_id, now)
        index_runs = {d.name: DeltaRun(d.name, micro.file_name,
                                       batch.batch_id, now)
                      for d, __ in indexes}
        upserts: dict[int, set] = {}
        tombstones: dict[str, dict[int, set]] = {
            d.name: {} for d, __ in indexes}

        # Newest-wins applies inside a batch too: a later upsert replaces
        # every earlier record of the same (partition, key) staged in
        # this same micro-batch, exactly as it replaces older runs.
        live: list[tuple[Record, bool, Any, int, Any]] = []
        for record, is_upsert in (
                [(r, False) for r in micro.appends]
                + [(r, True) for r in micro.upserts]):
            partition_key = loader.partition_key_fn(record)
            key = loader.key_fn(record)
            pid = base.partition_of_key(partition_key)
            if is_upsert:
                live = [entry for entry in live
                        if (entry[3], entry[4]) != (pid, key)]
            live.append((record, is_upsert, partition_key, pid, key))

        seq = 0
        for record, is_upsert, partition_key, pid, key in live:
            tag = delta_tag(batch.batch_id, seq)
            seq += 1
            base_run.add(pid, key, record, (pid, key), tag=tag)
            for definition, index in indexes:
                for index_key in definition.extract_keys(record):
                    entry = IndexEntry(index_key, partition_key, tag)
                    for ipid in index_placements(
                            definition, index, partition_key, index_key):
                        index_runs[definition.name].add(
                            ipid, index_key, entry, (pid, key))
            if not is_upsert:
                continue
            upserts.setdefault(pid, set()).add(key)
            # Kill the physical entries of every heap-resident version
            # this upsert replaces (older delta versions die by origin).
            heap = base.partitions[pid]
            for slot in heap.slots_for_key(key):
                old = heap.get(slot)
                old_pk = loader.partition_key_fn(old)
                for definition, index in indexes:
                    for old_key in definition.extract_keys(old):
                        triple = (old_key, old_pk, slot)
                        for ipid in index_placements(
                                definition, index, old_pk, old_key):
                            tombstones[definition.name].setdefault(
                                ipid, set()).add(triple)

        frozen_upserts = {pid: frozenset(keys)
                          for pid, keys in upserts.items()}
        base_run.upserts = frozen_upserts
        self.registry.register(base_run.seal())
        for definition, __ in indexes:
            run = index_runs[definition.name]
            run.upserts = frozen_upserts
            run.tombstones = {
                pid: frozenset(triples) for pid, triples in
                tombstones[definition.name].items()}
            self.registry.register(run.seal())

        if micro.late_count:
            self.registry.late_records += micro.late_count
        elif (self.registry.committed_through is not None
                and micro.event_time <= self.registry.committed_through):
            self.registry.late_records += len(micro)
        self.registry.note_commit(micro.event_time, now)
        # A commit leaves heap/tree pages untouched (the new records live
        # in delta runs beside them), so buffer pools stay valid — but
        # every semantic result derived from these structures is stale.
        self.catalog.invalidate_results(micro.file_name)
        for definition in definitions:
            self.catalog.invalidate_results(definition.name)
        batch.state = StructureState.READY
        batch.commit_time = now
        logger.info("committed batch #%d into %r (%d records, %d runs)",
                    batch.batch_id, micro.file_name, len(micro),
                    1 + len(indexes))

