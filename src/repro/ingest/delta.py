"""Delta segments: small sorted runs that make structures writable.

LakeHarbor builds structures wholesale from a loaded file; a streaming
lake cannot afford a full rebuild per micro-batch.  Instead each
committed batch leaves one :class:`DeltaRun` per affected structure — a
per-partition *sorted run* of payloads, the classic LSM compromise:

* for a **base file**, the payloads are the new record versions keyed by
  the in-partition key (the heap itself stays untouched until major
  compaction rewrites it);
* for an **index**, the payloads are
  :func:`~repro.storage.files.IndexEntry` records with *logical* targets
  (the new records have no heap slot yet), placed into index partitions
  with exactly the placement rule the built tree uses, so a probe of
  partition ``p`` finds precisely the entries the compacted tree would
  hold in ``p``.

Newest-wins upserts are encoded twice:

* ``upserts`` — per *base* partition, the set of in-partition keys this
  run's batch replaced.  Payloads of strictly older runs (and the base
  heap/tree) for those keys are dead.
* ``tombstones`` — per *index* partition, identity triples
  ``(index_key, target_partition_key, slot)`` of the physical entries in
  the built tree that the upsert invalidates.  The quarantine-recovery
  scan table rebuilds byte-identical physical entries, so tombstones
  filter that fallback path correctly too.

The :class:`DeltaRegistry` is the catalog-side ledger: runs per
structure in commit order (oldest first), plus the ingest watermark.
The catalog exposes it behind ``delta_depth()`` so that with zero
ingested batches every query path is bit-identical to a static lake.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Optional, Union

from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.errors import ReproError
from repro.ingest.watermark import FreshnessWatermark

__all__ = ["DeltaRun", "DeltaRegistry", "probe_delta_runs",
           "probe_delta_tag", "dead_base_keys", "tombstone_set",
           "merge_runs", "delta_tag", "is_delta_tag",
           "index_placements"]

Target = Union[Pointer, PointerRange]

#: sentinel heading the synthetic in-partition keys that address delta
#: records individually (see :func:`delta_tag`)
_TAG = "Δ"


def delta_tag(batch_id: int, seq: int) -> tuple:
    """Unique logical address of one delta record.

    Index delta entries cannot target the base in-partition key: for
    non-unique keys (lineitem keyed by ``l_orderkey``) that fetch would
    return *every* sibling record and duplicate rows already reached
    through their own physical entries.  So each delta record also gets
    a tag — a tuple that can never equal a real key — and index delta
    entries target the tag, resolving to exactly the record that
    produced them (the delta analogue of the DFS's physical slots).
    """
    return (_TAG, batch_id, seq)


def is_delta_tag(key: Any) -> bool:
    return (isinstance(key, tuple) and len(key) == 3 and key[0] == _TAG)


class DeltaRun:
    """One committed micro-batch's sorted run for one structure."""

    def __init__(self, structure: str, base_file: str, batch_id: int,
                 commit_time: float) -> None:
        self.structure = structure
        self.base_file = base_file
        self.batch_id = batch_id
        self.commit_time = commit_time
        #: per structure-partition sorted keys (bisect index)
        self._keys: dict[int, list[Any]] = {}
        #: payload records parallel to ``_keys``
        self._payloads: dict[int, list[Record]] = {}
        #: origin of each payload: (base partition id, base in-partition
        #: key) — the identity newest-wins filtering runs on
        self._origins: dict[int, list[tuple[int, Any]]] = {}
        #: optional per-payload delta tag (see :func:`delta_tag`)
        self._tags: dict[int, list[Any]] = {}
        #: pid -> tag -> payload position, built by :meth:`seal`
        self._by_tag: dict[int, dict[Any, int]] = {}
        #: payload bytes per partition (charging model input)
        self._bytes: dict[int, int] = {}
        #: base pid -> in-partition keys this run's batch upserted
        self.upserts: dict[int, frozenset] = {}
        #: index pid -> (index_key, target_partition_key, slot) triples of
        #: built-tree entries killed by this run's upserts (index runs only)
        self.tombstones: dict[int, frozenset] = {}

    # -- construction ----------------------------------------------------

    def add(self, pid: int, key: Any, payload: Record,
            origin: tuple[int, Any], tag: Any = None) -> None:
        """Stage one payload; call :meth:`seal` before probing."""
        self._keys.setdefault(pid, []).append(key)
        self._payloads.setdefault(pid, []).append(payload)
        self._origins.setdefault(pid, []).append(origin)
        self._tags.setdefault(pid, []).append(tag)
        self._bytes[pid] = self._bytes.get(pid, 0) + payload.size_bytes

    def seal(self) -> "DeltaRun":
        """Stable-sort every partition by key (arrival order preserved
        among duplicates, mirroring heap append order)."""
        for pid, keys in self._keys.items():
            order = sorted(range(len(keys)), key=lambda i: keys[i])
            self._keys[pid] = [keys[i] for i in order]
            self._payloads[pid] = [self._payloads[pid][i] for i in order]
            self._origins[pid] = [self._origins[pid][i] for i in order]
            self._tags[pid] = [self._tags[pid][i] for i in order]
            self._by_tag[pid] = {
                tag: i for i, tag in enumerate(self._tags[pid])
                if tag is not None}
        return self

    # -- probing ---------------------------------------------------------

    def probe(self, pid: int, target: Target
              ) -> list[tuple[Record, tuple[int, Any]]]:
        """Payloads (with origins) matching ``target`` in partition ``pid``."""
        keys = self._keys.get(pid)
        if not keys:
            return []
        if isinstance(target, PointerRange):
            lo = (0 if target.low is None
                  else bisect.bisect_left(keys, target.low)
                  if target.inclusive_low
                  else bisect.bisect_right(keys, target.low))
            hi = (len(keys) if target.high is None
                  else bisect.bisect_right(keys, target.high)
                  if target.inclusive_high
                  else bisect.bisect_left(keys, target.high))
        else:
            lo = bisect.bisect_left(keys, target.key)
            hi = bisect.bisect_right(keys, target.key)
        if lo >= hi:
            return []
        payloads = self._payloads[pid]
        origins = self._origins[pid]
        return [(payloads[i], origins[i]) for i in range(lo, hi)]

    def tagged(self, pid: int, tag: Any
               ) -> Optional[tuple[Any, Record, tuple[int, Any]]]:
        """Resolve a delta tag to its (key, payload, origin), if here."""
        pos = self._by_tag.get(pid, {}).get(tag)
        if pos is None:
            return None
        return (self._keys[pid][pos], self._payloads[pid][pos],
                self._origins[pid][pos])

    def partitions(self) -> list[int]:
        return sorted(self._keys)

    def partition_bytes(self, pid: int) -> int:
        return self._bytes.get(pid, 0)

    def partition_len(self, pid: int) -> int:
        return len(self._keys.get(pid, ()))

    def items(self, pid: int
              ) -> Iterable[tuple[Any, Record, tuple[int, Any], Any]]:
        """All (key, payload, origin, tag) tuples of one partition, in
        key order — the compaction merge input."""
        keys = self._keys.get(pid, [])
        payloads = self._payloads.get(pid, [])
        origins = self._origins.get(pid, [])
        tags = self._tags.get(pid, [])
        return zip(keys, payloads, origins, tags)

    def __len__(self) -> int:
        return sum(len(keys) for keys in self._keys.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeltaRun({self.structure!r}, batch={self.batch_id}, "
                f"entries={len(self)})")


# -- newest-wins merge helpers (shared by engines and compaction) --------

def dead_base_keys(runs: list[DeltaRun], pid: int) -> frozenset:
    """In-partition keys of base partition ``pid`` superseded by any run."""
    dead: set = set()
    for run in runs:
        dead |= run.upserts.get(pid, frozenset())
    return frozenset(dead)


def tombstone_set(runs: list[DeltaRun], pid: int) -> frozenset:
    """Built-tree entry identities killed for index partition ``pid``."""
    dead: set = set()
    for run in runs:
        dead |= run.tombstones.get(pid, frozenset())
    return frozenset(dead)


def probe_delta_runs(runs: list[DeltaRun], pid: int, target: Target
                     ) -> tuple[list[Record], int]:
    """Merge-probe the unmerged runs of one structure partition.

    Returns ``(payloads, superseded)`` where ``payloads`` are the live
    additions in commit order (oldest run first, key order within a run)
    and ``superseded`` counts payloads dropped because a strictly newer
    run upserted their origin key.
    """
    additions: list[Record] = []
    superseded = 0
    for i, run in enumerate(runs):
        hits = run.probe(pid, target)
        if not hits:
            continue
        newer = runs[i + 1:]
        for payload, (base_pid, base_key) in hits:
            if any(base_key in later.upserts.get(base_pid, frozenset())
                   for later in newer):
                superseded += 1
                continue
            additions.append(payload)
    return additions, superseded


def probe_delta_tag(runs: list[DeltaRun], pid: int, tag: Any
                    ) -> tuple[list[Record], int]:
    """Resolve one delta-tag pointer against the unmerged runs.

    Tags are unique across runs, so the first hit is the only hit; a
    hit whose origin a newer run upserted is dead (the index entry that
    carried the tag was filtered too, but a direct probe must agree).
    """
    for i, run in enumerate(runs):
        hit = run.tagged(pid, tag)
        if hit is None:
            continue
        __, payload, (base_pid, base_key) = hit
        if any(base_key in later.upserts.get(base_pid, frozenset())
               for later in runs[i + 1:]):
            return [], 1
        return [payload], 0
    return [], 0


def index_placements(definition: Any, index: Any, base_partition_key: Any,
                     index_key: Any) -> list[int]:
    """Index partitions one delta entry lands in — the exact placement
    rule of the built tree, so probes of partition ``p`` see precisely
    the delta entries the compacted tree would hold.  Shared by the
    ingest commit and the materialization-time backfill."""
    if definition.scope == "replicated":
        return list(range(index.num_partitions))
    if definition.scope == "local":
        return [index.partition_of_key(base_partition_key)]
    return [index.partition_of_key(index_key)]


def merge_runs(runs: list[DeltaRun]) -> DeltaRun:
    """Fold several runs into one (minor compaction).

    Probing the merged run is equivalent to probing the originals:
    payloads superseded across the merged set are dropped here, upsert
    and tombstone sets are unioned, and stable key-sorting preserves
    commit order among duplicates.
    """
    if not runs:
        raise ReproError("nothing to merge")
    newest = runs[-1]
    out = DeltaRun(newest.structure, newest.base_file,
                   newest.batch_id, newest.commit_time)
    upserts: dict[int, set] = {}
    tombstones: dict[int, set] = {}
    for i, run in enumerate(runs):
        newer = runs[i + 1:]
        for pid in run.partitions():
            for key, payload, origin, tag in run.items(pid):
                base_pid, base_key = origin
                if any(base_key in later.upserts.get(base_pid, frozenset())
                       for later in newer):
                    continue
                out.add(pid, key, payload, origin, tag=tag)
        for pid, keys in run.upserts.items():
            upserts.setdefault(pid, set()).update(keys)
        for pid, triples in run.tombstones.items():
            tombstones.setdefault(pid, set()).update(triples)
    out.upserts = {pid: frozenset(keys) for pid, keys in upserts.items()}
    out.tombstones = {pid: frozenset(triples)
                      for pid, triples in tombstones.items()}
    return out.seal()


class DeltaRegistry:
    """Catalog-side ledger of unmerged delta runs and the watermark."""

    def __init__(self) -> None:
        self._runs: dict[str, list[DeltaRun]] = {}
        self.committed_through: Optional[float] = None
        self.committed_batches = 0
        self.pending_batches = 0
        self.last_commit_at: Optional[float] = None
        self.late_records = 0
        #: per-file compaction charge checkpoints (crash-resumable)
        self.compaction_checkpoints: dict[str, set[int]] = {}

    # -- run bookkeeping -------------------------------------------------

    def register(self, run: DeltaRun) -> None:
        self._runs.setdefault(run.structure, []).append(run)

    def runs(self, structure: str) -> list[DeltaRun]:
        """Unmerged runs of one structure, oldest first."""
        return self._runs.get(structure, [])

    def depth(self, structure: str) -> int:
        return len(self._runs.get(structure, ()))

    def replace_runs(self, structure: str, runs: list[DeltaRun]) -> None:
        """Swap a structure's run list (minor compaction commit)."""
        if runs:
            self._runs[structure] = runs
        else:
            self._runs.pop(structure, None)

    def retire(self, structure: str) -> None:
        """Drop every run of a structure (major compaction commit)."""
        self._runs.pop(structure, None)
        self.compaction_checkpoints.pop(structure, None)

    def structures(self) -> list[str]:
        return sorted(self._runs)

    @property
    def total_runs(self) -> int:
        return sum(len(runs) for runs in self._runs.values())

    # -- watermark -------------------------------------------------------

    @property
    def active(self) -> bool:
        """True once ingest has touched the lake at all — the trigger for
        watermark stamping (static lakes stay bit-identical)."""
        return (self.committed_batches > 0 or self.pending_batches > 0
                or bool(self._runs))

    def note_commit(self, event_time: float, now: float) -> None:
        if self.pending_batches <= 0:
            raise ReproError("commit without a staged batch")
        self.pending_batches -= 1
        self.committed_batches += 1
        # Stored as float so metric aggregators that sum integer counters
        # never fold the watermark in by accident.
        event_time = float(event_time)
        if (self.committed_through is None
                or event_time > self.committed_through):
            self.committed_through = event_time
        self.last_commit_at = now

    def watermark(self) -> FreshnessWatermark:
        return FreshnessWatermark(
            committed_through=self.committed_through,
            committed_batches=self.committed_batches,
            pending_batches=self.pending_batches,
            delta_runs=self.total_runs,
            last_commit_at=self.last_commit_at,
            late_records=self.late_records)
