"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.  Sub-hierarchies
mirror the package layout: simulation, storage, core (job definition), and
engine (execution) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Base class for discrete-event simulator errors."""


class SimulationDeadlock(SimulationError):
    """Raised when ``run()`` is asked to wait on an event that can never fire.

    The event heap drained while at least one process was still waiting; with
    no external event sources, simulated time can no longer advance.
    """


class StorageError(ReproError):
    """Base class for storage-layer errors."""


class PartitionError(StorageError):
    """A partition id or partition key was invalid for the target file."""


class RecordNotFound(StorageError):
    """A pointer did not resolve to a record."""


class DuplicateKey(StorageError):
    """A unique key was inserted twice into a structure that forbids it."""


class CatalogError(ReproError):
    """Base class for structure-catalog errors."""


class UnknownStructure(CatalogError):
    """A structure (file or index) name was not found in the catalog."""


class AccessMethodError(CatalogError):
    """An access-method definition was malformed or conflicted with another."""


class JobDefinitionError(ReproError):
    """A Reference-Dereference job failed validation.

    Raised when the function list does not alternate sensibly, references an
    unknown structure, or has mismatched stage wiring.
    """


class ExecutionError(ReproError):
    """A job failed while executing on one of the engines."""


class FaultError(ReproError):
    """Base class for simulated infrastructure faults.

    Raised by the hardware substrate when a :class:`~repro.cluster.faults.
    FaultPlan` is active; the engines' resilience layer catches these and
    applies the configured ``on_error`` policy.  User-code errors never
    derive from this class, so fault handling cannot mask application bugs.
    """


class TransientIOError(FaultError):
    """A disk read or network message failed transiently (retryable)."""


class DereferenceTimeout(TransientIOError):
    """A dereference invocation exceeded ``EngineConfig.dereference_timeout``.

    Treated as a transient fault: the invocation is abandoned and retried
    (the straggler-mitigation path for slow disks).
    """


class NodeCrashed(FaultError):
    """An operation touched a node that has permanently crashed.

    Carries the dead node's id so recovery can re-route to a survivor.
    """

    def __init__(self, message: str, node: int = -1) -> None:
        super().__init__(message)
        self.node = node


class StructureCorruptionError(FaultError):
    """A probe read a structure page whose checksum did not verify.

    Deliberately *not* a :class:`TransientIOError`: re-reading a corrupt
    page cannot fix it, so the retry/backoff path never sees this.  The
    engines' recovery layer quarantines the structure and re-serves the
    stage from a base-file scan instead.  Carries the structure name and
    the failing page identity (a :class:`~repro.storage.cache.PageId`).
    """

    def __init__(self, message: str, structure: str = "",
                 page: object = None) -> None:
        super().__init__(message)
        self.structure = structure
        self.page = page


class JobAborted(ExecutionError):
    """A job was aborted mid-run by the failure policy.

    The triggering fault is chained as ``__cause__``.
    """


class DataGenerationError(ReproError):
    """A synthetic dataset generator received inconsistent parameters."""
