"""An in-memory B+tree, the structure behind ``BtreeFile``.

The paper's ReDe prototype builds "local secondary indexes on the date
columns ... and global indexes for each foreign key", all B-tree shaped.
This is a textbook B+tree:

* unique keys in the tree, each holding a *list* of values (so secondary
  indexes with duplicate keys need no special casing);
* leaves are chained for ordered range scans;
* insertion with node splits, deletion with borrow/merge rebalancing;
* :meth:`BPlusTree.bulk_load` builds a packed tree from sorted pairs;
* :meth:`BPlusTree.check_invariants` verifies the full B+tree contract and
  is exercised heavily by the property-based tests.

Keys must be mutually comparable (the library uses plain values or tuples).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Optional

from repro.errors import StorageError

__all__ = ["BPlusTree"]


def _even_groups(total: int, target: int, cap_min: int,
                 cap_max: int) -> list[int]:
    """Split ``total`` items into group sizes near ``target``.

    Every group size lands in ``[cap_min, cap_max]`` whenever
    ``total >= cap_min``; a smaller total yields a single (root-exempt)
    group.  Sizes differ by at most one, which is what makes bulk-loaded
    trees satisfy the occupancy invariants at every level.
    """
    if total == 0:
        return []
    n_min = -(-total // cap_max)  # ceil
    n_max = total // cap_min if total >= cap_min else 1
    n = -(-total // target)
    n = max(n_min, min(n, max(n_min, n_max)))
    base, remainder = divmod(total, n)
    return [base + 1] * remainder + [base] * (n - remainder)


class _Leaf:
    __slots__ = ("keys", "values", "next", "page")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[Any]] = []
        self.next: Optional["_Leaf"] = None
        #: page number for cache identity, assigned on first traversal
        self.page: Optional[int] = None

    is_leaf = True


class _Internal:
    __slots__ = ("keys", "children", "page")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.children: list[Any] = []
        self.page: Optional[int] = None

    is_leaf = False


class BPlusTree:
    """A B+tree mapping comparable keys to lists of values.

    Args:
        order: maximum number of children of an internal node; leaves hold at
            most ``order - 1`` keys.  Small orders make splits/merges easy to
            exercise in tests; the storage layer defaults to a realistic 64.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise StorageError(f"B+tree order must be >= 3, got {order}")
        self.order = order
        self._root: Any = _Leaf()
        self._height = 1
        self._num_keys = 0
        self._num_values = 0
        self._next_page_no = 0

    # -- capacities ------------------------------------------------------

    @property
    def _max_keys(self) -> int:
        return self.order - 1

    @property
    def _min_keys(self) -> int:
        # Non-root nodes must stay at least half full.
        return self._max_keys // 2

    # -- public metadata -------------------------------------------------

    def __len__(self) -> int:
        """Number of stored *values* (duplicates counted)."""
        return self._num_values

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return self._num_keys

    @property
    def height(self) -> int:
        """Levels from root to leaf, inclusive (1 for a lone leaf)."""
        return self._height

    def min_key(self) -> Any:
        """Smallest key, or None for an empty tree."""
        if self._num_keys == 0:
            return None
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest key, or None for an empty tree."""
        if self._num_keys == 0:
            return None
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- search ----------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Any) -> list[Any]:
        """Return all values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range(self, low: Any = None, high: Any = None,
              inclusive_low: bool = True,
              inclusive_high: bool = True) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with key in the requested range.

        ``None`` bounds are open ends.  Duplicate values under one key are
        yielded individually, in insertion order.
        """
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            index = (bisect.bisect_left(leaf.keys, low) if inclusive_low
                     else bisect.bisect_right(leaf.keys, low))
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if key > high or (key == high and not inclusive_high):
                        return
                for value in leaf.values[index]:
                    yield key, value
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All ``(key, value)`` pairs in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """All distinct keys in order."""
        leaf: Optional[_Leaf] = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # -- page traversal (cache identity) ---------------------------------

    def _page_no(self, node: Any) -> int:
        """Stable page number of a tree node, assigned on first traversal.

        Numbers live on the nodes themselves, so they survive rebalancing
        and stay unique for the lifetime of the tree; allocation order
        follows probe order, which is deterministic for a deterministic
        workload.
        """
        if node.page is None:
            node.page = self._next_page_no
            self._next_page_no += 1
        return node.page

    def point_traversal_pages(self, key: Any) -> tuple[list[int], list[int]]:
        """``(interior_pages, leaf_pages)`` an equality probe of ``key``
        touches: the root-to-leaf path plus the single candidate leaf."""
        interior: list[int] = []
        node = self._root
        while not node.is_leaf:
            interior.append(self._page_no(node))
            node = node.children[bisect.bisect_right(node.keys, key)]
        return interior, [self._page_no(node)]

    def range_traversal_pages(self, low: Any = None, high: Any = None,
                              inclusive_low: bool = True,
                              inclusive_high: bool = True
                              ) -> tuple[list[int], list[int]]:
        """``(interior_pages, leaf_pages)`` a range probe touches.

        Mirrors :meth:`range`: the interior path descends toward ``low``
        (or the leftmost leaf), then the leaf chain is followed until a key
        beyond ``high`` proves the scan is done — a leaf is counted as soon
        as it must be read, including the one that terminates the scan.
        """
        interior: list[int] = []
        node = self._root
        while not node.is_leaf:
            interior.append(self._page_no(node))
            if low is None:
                node = node.children[0]
            else:
                node = node.children[bisect.bisect_right(node.keys, low)]
        leaf: _Leaf = node
        leaves = [self._page_no(leaf)]
        index = (0 if low is None
                 else bisect.bisect_left(leaf.keys, low) if inclusive_low
                 else bisect.bisect_right(leaf.keys, low))
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None and (
                        key > high or (key == high and not inclusive_high)):
                    return interior, leaves
                index += 1
            if leaf.next is None:
                return interior, leaves
            leaf = leaf.next
            leaves.append(self._page_no(leaf))
            index = 0

    def all_pages(self) -> tuple[list[int], list[int]]:
        """``(interior_pages, leaf_pages)`` of the whole tree, breadth-first.

        Assigns page numbers to any node not yet traversed, so the result
        enumerates every page the tree would ever expose to the cache —
        the scrub worker's sampling universe.
        """
        interior: list[int] = []
        leaves: list[int] = []
        frontier: list[Any] = [self._root]
        while frontier:
            next_frontier: list[Any] = []
            for node in frontier:
                if node.is_leaf:
                    leaves.append(self._page_no(node))
                else:
                    interior.append(self._page_no(node))
                    next_frontier.extend(node.children)
            frontier = next_frontier
        return interior, leaves

    # -- insertion -------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert one value under ``key`` (duplicates accumulate)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: Any, key: Any,
                value: Any) -> Optional[tuple[Any, Any]]:
        """Recursive insert; returns ``(separator, new_right_sibling)`` on
        split, else None."""
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                self._num_values += 1
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [value])
            self._num_keys += 1
            self._num_values += 1
            if len(node.keys) <= self._max_keys:
                return None
            return self._split_leaf(node)

        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self._max_keys:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        del leaf.keys[middle:]
        del leaf.values[middle:]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        del node.keys[middle:]
        del node.children[middle + 1:]
        return separator, right

    # -- deletion --------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Delete values under ``key``.

        With ``value`` given, removes the first matching stored value;
        without it, removes the key and all its values.  Returns the number
        of values removed (0 if nothing matched).
        """
        removed = self._delete(self._root, key, value)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        return removed

    def _delete(self, node: Any, key: Any, value: Any) -> int:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return 0
            bucket = node.values[index]
            if value is None:
                removed = len(bucket)
                bucket.clear()
            else:
                try:
                    bucket.remove(value)
                except ValueError:
                    return 0
                removed = 1
            self._num_values -= removed
            if not bucket:
                node.keys.pop(index)
                node.values.pop(index)
                self._num_keys -= 1
            return removed

        index = bisect.bisect_right(node.keys, key)
        removed = self._delete(node.children[index], key, value)
        if removed:
            self._rebalance_child(node, index)
        return removed

    def _node_underflows(self, node: Any) -> bool:
        return len(node.keys) < self._min_keys

    def _rebalance_child(self, parent: _Internal, index: int) -> None:
        child = parent.children[index]
        if not self._node_underflows(child):
            return
        # Try borrowing from the left sibling, then the right, else merge.
        if index > 0:
            left = parent.children[index - 1]
            if len(left.keys) > self._min_keys:
                self._borrow_from_left(parent, index, left, child)
                return
        if index < len(parent.children) - 1:
            right = parent.children[index + 1]
            if len(right.keys) > self._min_keys:
                self._borrow_from_right(parent, index, child, right)
                return
        if index > 0:
            self._merge(parent, index - 1)
        else:
            self._merge(parent, index)

    def _borrow_from_left(self, parent: _Internal, index: int,
                          left: Any, child: Any) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, index: int,
                           child: Any, right: Any) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_index: int) -> None:
        """Merge children ``left_index`` and ``left_index + 1``."""
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # -- bulk loading ----------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs: Iterable[tuple[Any, Any]],
                  order: int = 64, fill: float = 0.9) -> "BPlusTree":
        """Build a tree from ``(key, value)`` pairs sorted by key.

        Consecutive equal keys collapse into one duplicate bucket.  ``fill``
        controls target leaf packing (0 < fill <= 1); nodes at every level
        are *evenly* distributed around the target so the result always
        satisfies the B+tree occupancy invariants.
        """
        if not 0 < fill <= 1:
            raise StorageError(f"fill factor must be in (0, 1], got {fill}")
        tree = cls(order=order)

        keys: list[Any] = []
        buckets: list[list[Any]] = []
        sentinel = object()
        previous_key: Any = sentinel
        for key, value in pairs:
            if previous_key is not sentinel and key == previous_key:
                buckets[-1].append(value)
                tree._num_values += 1
                continue
            if previous_key is not sentinel and key < previous_key:
                raise StorageError("bulk_load input must be sorted by key")
            keys.append(key)
            buckets.append([value])
            tree._num_keys += 1
            tree._num_values += 1
            previous_key = key

        # Leaves: even split with per-leaf target around fill * max_keys.
        target = max(1, min(tree._max_keys, round(tree._max_keys * fill)))
        groups = _even_groups(len(keys), target,
                              max(1, tree._min_keys), tree._max_keys)
        leaves: list[_Leaf] = []
        start = 0
        for size in groups:
            leaf = _Leaf()
            leaf.keys = keys[start:start + size]
            leaf.values = buckets[start:start + size]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
            start += size
        if not leaves:
            leaves.append(_Leaf())

        level: list[Any] = leaves
        height = 1
        child_target = max(2, min(tree.order, round(tree.order * fill)))
        while len(level) > 1:
            level = tree._build_internal_level(level, child_target)
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    @staticmethod
    def _first_key(node: Any) -> Any:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def _build_internal_level(self, children: list[Any],
                              child_target: int) -> list[Any]:
        groups = _even_groups(len(children), child_target,
                              self._min_keys + 1, self.order)
        nodes: list[_Internal] = []
        start = 0
        for size in groups:
            node = _Internal()
            node.children = children[start:start + size]
            node.keys = [self._first_key(child)
                         for child in node.children[1:]]
            nodes.append(node)
            start += size
        return nodes

    # -- validation ------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the full B+tree contract; raises StorageError on violation.

        Checks: sorted keys everywhere, key-count bounds, uniform leaf depth,
        separator correctness (every key in child ``i`` lies within the
        separators around it), intact leaf chain, and accurate counters.
        """
        leaves: list[_Leaf] = []
        self._check_node(self._root, depth=1, low=None, high=None,
                         is_root=True, leaves=leaves)
        chained = []
        node = self._leftmost_leaf()
        while node is not None:
            chained.append(node)
            node = node.next
        if chained != leaves:
            raise StorageError("leaf chain does not match tree order")
        num_keys = sum(len(leaf.keys) for leaf in leaves)
        num_values = sum(len(bucket) for leaf in leaves
                         for bucket in leaf.values)
        if num_keys != self._num_keys:
            raise StorageError(
                f"key counter {self._num_keys} != actual {num_keys}")
        if num_values != self._num_values:
            raise StorageError(
                f"value counter {self._num_values} != actual {num_values}")

    def _check_node(self, node: Any, depth: int, low: Any, high: Any,
                    is_root: bool, leaves: list[_Leaf]) -> int:
        keys = node.keys
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise StorageError(f"unsorted keys in node: {keys}")
        for key in keys:
            if low is not None and key < low:
                raise StorageError(f"key {key!r} below separator {low!r}")
            if high is not None and key >= high:
                raise StorageError(f"key {key!r} not below separator {high!r}")
        if node.is_leaf:
            if not is_root and len(keys) < self._min_keys:
                raise StorageError(
                    f"underfull leaf: {len(keys)} < {self._min_keys}")
            if len(keys) > self._max_keys:
                raise StorageError("overfull leaf")
            if len(node.values) != len(keys):
                raise StorageError("leaf keys/values length mismatch")
            if any(not bucket for bucket in node.values):
                raise StorageError("empty duplicate bucket in leaf")
            if depth != self._height:
                raise StorageError(
                    f"leaf at depth {depth}, expected {self._height}")
            leaves.append(node)
            return depth
        if not is_root and len(keys) < self._min_keys:
            raise StorageError(
                f"underfull internal node: {len(keys)} < {self._min_keys}")
        if len(keys) > self._max_keys:
            raise StorageError("overfull internal node")
        if len(node.children) != len(keys) + 1:
            raise StorageError("internal node children/keys mismatch")
        if is_root and len(node.children) < 2:
            raise StorageError("internal root must have >= 2 children")
        depths = set()
        bounds = [low] + list(keys) + [high]
        for i, child in enumerate(node.children):
            depths.add(self._check_node(child, depth + 1, bounds[i],
                                        bounds[i + 1], False, leaves))
        if len(depths) != 1:
            raise StorageError("leaves at differing depths")
        return depths.pop()
