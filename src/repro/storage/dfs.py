"""The "simple distributed file system" used by ReDe.

Paper, Section III-E: "For ReDe, we created a simple distributed file system
for the experiments and used it instead of HDFS since HDFS is not
well-optimized for non-scan accesses such as lookups.  We loaded the files
into the distributed file system, which distributed the files into 128
partitions evenly spread into the nodes by hashing with their primary keys.
We also created local secondary indexes on the date columns ... and global
indexes for each foreign key".

:class:`DistributedFileSystem` is that namespace: it owns
:class:`~repro.storage.files.PartitionedFile` base files and
:class:`~repro.storage.files.BtreeFile` indexes, remembers how each base
file was keyed (the seed of the access-method registration that
:mod:`repro.core.catalog` formalizes), and can derive local and global
secondary indexes from key-extractor functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.core.pointers import PointerKind
from repro.core.records import Record
from repro.errors import StorageError, UnknownStructure
from repro.storage.files import (
    BtreeFile,
    File,
    IndexEntry,
    PartitionedFile,
)
from repro.storage.partitioner import HashPartitioner, Partitioner

__all__ = ["DistributedFileSystem", "LoaderInfo"]

KeyFn = Callable[[Record], Any]


@dataclass
class LoaderInfo:
    """How a base file's records were keyed at load time."""

    partition_key_fn: KeyFn
    key_fn: KeyFn


class DistributedFileSystem:
    """A namespace of partitioned files and B-tree indexes over a cluster."""

    def __init__(self, num_nodes: int,
                 default_partitions: Optional[int] = None) -> None:
        if num_nodes < 1:
            raise StorageError("DFS needs at least one node")
        self.num_nodes = num_nodes
        self.default_partitions = default_partitions or num_nodes
        self._files: dict[str, File] = {}
        self._loaders: dict[str, LoaderInfo] = {}

    # -- namespace -------------------------------------------------------

    def add(self, file: File) -> File:
        if file.name in self._files:
            raise StorageError(f"structure {file.name!r} already exists")
        self._files[file.name] = file
        return file

    def get(self, name: str) -> File:
        try:
            return self._files[name]
        except KeyError:
            raise UnknownStructure(f"no structure named {name!r}") from None

    def get_base(self, name: str) -> PartitionedFile:
        file = self.get(name)
        if not isinstance(file, PartitionedFile):
            raise StorageError(f"{name!r} is not a base file")
        return file

    def get_index(self, name: str) -> BtreeFile:
        file = self.get(name)
        if not isinstance(file, BtreeFile):
            raise StorageError(f"{name!r} is not a B-tree index")
        return file

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def names(self) -> list[str]:
        return sorted(self._files)

    def drop(self, name: str) -> None:
        if name not in self._files:
            raise UnknownStructure(f"no structure named {name!r}")
        del self._files[name]
        self._loaders.pop(name, None)

    # -- base files ------------------------------------------------------

    def create_file(self, name: str,
                    num_partitions: Optional[int] = None,
                    partitioner: Optional[Partitioner] = None
                    ) -> PartitionedFile:
        """Create an empty hash-partitioned base file."""
        if partitioner is None:
            partitioner = HashPartitioner(
                num_partitions or self.default_partitions)
        file = PartitionedFile(name, partitioner, num_nodes=self.num_nodes)
        self.add(file)
        return file

    def load(self, name: str, records: Iterable[Record],
             partition_key_fn: KeyFn,
             key_fn: Optional[KeyFn] = None,
             num_partitions: Optional[int] = None) -> PartitionedFile:
        """Create a base file and load records into it.

        ``partition_key_fn`` extracts the partitioning key from each record
        (the primary key, in the paper's layout); ``key_fn`` the in-partition
        key (defaults to the partition key).  The extractors are remembered
        so that index builds can reconstruct pointers to base records.
        """
        key_fn = key_fn or partition_key_fn
        file = self.create_file(name, num_partitions=num_partitions)
        for record in records:
            file.insert(record, partition_key_fn(record), key_fn(record))
        self._loaders[name] = LoaderInfo(partition_key_fn, key_fn)
        return file

    def loader_info(self, name: str) -> LoaderInfo:
        try:
            return self._loaders[name]
        except KeyError:
            raise StorageError(
                f"no loader info for {name!r}; load it through "
                "DistributedFileSystem.load") from None

    # -- indexes ---------------------------------------------------------

    def build_global_index(self, index_name: str, base_name: str,
                           index_key_fn: KeyFn,
                           num_partitions: Optional[int] = None,
                           order: int = 64,
                           partitioner: Optional[Partitioner] = None
                           ) -> BtreeFile:
        """Build a global secondary index, partitioned by the index key.

        The paper builds one per foreign key: "global indexes for each
        foreign key of each file.  Each global index is also distributed
        into partitions by the corresponding foreign key."  Pass a
        :class:`~repro.storage.partitioner.RangePartitioner` to make range
        probes prunable to the overlapping partitions.
        """
        return self._build_index(index_name, base_name, index_key_fn,
                                 scope="global",
                                 num_partitions=num_partitions, order=order,
                                 partitioner=partitioner)

    def build_replicated_index(self, index_name: str, base_name: str,
                               index_key_fn: KeyFn,
                               order: int = 64) -> BtreeFile:
        """Build a fully replicated index: one complete copy per node.

        The FRI scheme of the taxonomy the paper cites: probes are always
        node-local (no cross-node index traffic), at the cost of N-fold
        build/maintenance work and capacity.
        """
        return self._build_index(index_name, base_name, index_key_fn,
                                 scope="replicated", num_partitions=None,
                                 order=order)

    def build_local_index(self, index_name: str, base_name: str,
                          index_key_fn: KeyFn,
                          order: int = 64) -> BtreeFile:
        """Build a local secondary index, colocated with base partitions.

        The paper builds these on date columns (e.g. ``o_orderdate``); range
        probes visit every partition, each node handling its local ones.
        """
        return self._build_index(index_name, base_name, index_key_fn,
                                 scope="local", num_partitions=None,
                                 order=order)

    def _build_index(self, index_name: str, base_name: str,
                     index_key_fn: KeyFn, scope: str,
                     num_partitions: Optional[int], order: int,
                     partitioner: Optional[Partitioner] = None) -> BtreeFile:
        base = self.get_base(base_name)
        loader = self.loader_info(base_name)
        if scope == "local":
            # Local index partitions mirror the base file exactly, entry
            # placement included, so it reuses the base partitioner.
            partitioner = base.partitioner
            placement = [base.node_of(pid)
                         for pid in range(base.num_partitions)]
            index = BtreeFile(index_name, partitioner, placement=placement,
                              scope="local", order=order)
        elif scope == "replicated":
            # One replica partition per node, placed on that node.
            partitioner = HashPartitioner(self.num_nodes)
            index = BtreeFile(index_name, partitioner,
                              placement=list(range(self.num_nodes)),
                              scope="replicated", order=order)
        else:
            if partitioner is None:
                partitioner = HashPartitioner(
                    num_partitions or self.default_partitions)
            index = BtreeFile(index_name, partitioner,
                              num_nodes=self.num_nodes, scope="global",
                              order=order)
        entries = []
        # Entries address base records *physically* (partition-routing key
        # + slot), so each resolves to exactly the record that produced it
        # even when the base file's logical key is non-unique.
        for pid, heap in enumerate(base.partitions):
            for slot, record in enumerate(heap.scan()):
                keys = index_key_fn(record)
                if keys is None:
                    # schema-on-read: records missing the key are skipped
                    continue
                if not isinstance(keys, list):
                    keys = [keys]
                base_partition_key = loader.partition_key_fn(record)
                for index_key in keys:
                    entry = IndexEntry(index_key, base_partition_key, slot,
                                       kind=PointerKind.PHYSICAL)
                    # Local entries colocate with the base partition;
                    # global entries partition by the index key itself.
                    placement_key = (base_partition_key if scope == "local"
                                     else index_key)
                    entries.append((index_key, entry, placement_key))
        index.bulk_build(entries)
        self.add(index)
        return index
