"""Concrete implementations of the paper's I/O abstraction.

Section III-B defines three basic interfaces — *Record*, *Pointer*, *File* —
plus the special *BtreeFile*:

* :class:`PartitionedFile` — "a set of *Records* composes a *File*.  *File*
  is assumed to be distributed into partitions and can locate a *Record*
  with the corresponding *Pointer*."
* :class:`BtreeFile` — "can also locate a set of *Records* with a range of
  given *Pointers*."

Both carry a *placement* (partition id → node id) so the engines can charge
disk IO on the owning node and network transfer for cross-partition access.
The storage layer itself is synchronous and time-free: virtual time is the
engines' job.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.core.pointers import Pointer, PointerKind, PointerRange
from repro.core.records import Record
from repro.errors import PartitionError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.cache import PageId
from repro.storage.heapfile import HeapFile
from repro.storage.partitioner import HashPartitioner, Partitioner, \
    stable_hash

__all__ = ["File", "PartitionedFile", "BtreeFile", "IndexEntry",
           "round_robin_placement"]

#: Per-entry B-tree key/pointer overhead used in index size estimates.
_ENTRY_OVERHEAD = 16

#: Field names of the index-entry record convention (see :func:`IndexEntry`).
TARGET_PARTITION_FIELD = "target_partition_key"
TARGET_KEY_FIELD = "target_key"
TARGET_KIND_FIELD = "target_kind"
INDEX_KEY_FIELD = "key"


def IndexEntry(index_key: Any, target_partition_key: Any,
               target_key: Any, kind: PointerKind = PointerKind.LOGICAL,
               **extra: Any) -> Record:
    """Build an index-entry record pointing into a base file.

    Paper, Section III-B/Fig. 4: dereferencing a B-tree index yields records
    that "consist of logical pointers of the Part file" — and a *Pointer*
    may equally be "physical (e.g., file offset)".  The convention used
    throughout this library is a mapping record with the index key, the base
    file's partition key (always logical — it routes through the
    partitioner), the in-partition target (a record key, or a physical slot
    for ``kind=PHYSICAL``), optionally widened with included columns
    (covering-index style).

    Secondary indexes built by the DFS use **physical** targets so an entry
    resolves to exactly the record that produced it, even when the base
    file's logical key is non-unique (e.g. lineitem keyed by l_orderkey).
    """
    data = {INDEX_KEY_FIELD: index_key,
            TARGET_PARTITION_FIELD: target_partition_key,
            TARGET_KEY_FIELD: target_key}
    if kind is not PointerKind.LOGICAL:
        data[TARGET_KIND_FIELD] = kind.value
    data.update(extra)
    return Record(data)


def round_robin_placement(num_partitions: int,
                          num_nodes: int) -> list[int]:
    """Default placement: partition ``i`` lives on node ``i % num_nodes``."""
    if num_nodes < 1:
        raise PartitionError("placement needs at least one node")
    return [i % num_nodes for i in range(num_partitions)]


class File(abc.ABC):
    """Shared behaviour of partition-distributed structures."""

    def __init__(self, name: str, partitioner: Partitioner,
                 placement: Sequence[int]) -> None:
        if len(placement) != partitioner.num_partitions:
            raise PartitionError(
                f"placement has {len(placement)} entries for "
                f"{partitioner.num_partitions} partitions")
        self.name = name
        self.partitioner = partitioner
        self._placement = list(placement)

    @property
    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    def partition_of_key(self, partition_key: Any) -> int:
        """Partition id owning ``partition_key``."""
        return self.partitioner.partition(partition_key)

    def node_of(self, partition_id: int) -> int:
        """Node hosting partition ``partition_id``."""
        self.partitioner.validate(partition_id)
        return self._placement[partition_id]

    def node_of_key(self, partition_key: Any) -> int:
        return self.node_of(self.partition_of_key(partition_key))

    def partitions_on_node(self, node_id: int) -> list[int]:
        """Partition ids placed on ``node_id``."""
        return [pid for pid, node in enumerate(self._placement)
                if node == node_id]

    @property
    def placement(self) -> tuple[int, ...]:
        """Current partition→node placement (read-only snapshot)."""
        return tuple(self._placement)

    def move_partition(self, partition_id: int, node_id: int) -> int:
        """Re-home one partition (a rebalance commit); returns the old
        owner.  This is pure metadata — the bytes were already copied by
        whoever calls it (the storage layer is synchronous and time-free).
        """
        pid = self.partitioner.validate(partition_id)
        if node_id < 0:
            raise PartitionError(
                f"cannot place partition {pid} on negative node {node_id}")
        old = self._placement[pid]
        self._placement[pid] = node_id
        return old

    @abc.abstractmethod
    def lookup(self, pointer: Pointer) -> list[Record]:
        """Locate the record(s) a pointer refers to."""


class PartitionedFile(File):
    """A hash/range-partitioned record file — ReDe's base-table storage.

    Records are inserted with an explicit partition key (e.g. the primary
    key for TPC-H base files) and an in-partition key; both default
    sensibly for the common primary-key layout where the two coincide.
    """

    def __init__(self, name: str, partitioner: Partitioner,
                 placement: Optional[Sequence[int]] = None,
                 num_nodes: Optional[int] = None) -> None:
        if placement is None:
            if num_nodes is None:
                raise PartitionError(
                    "PartitionedFile needs either a placement or num_nodes")
            placement = round_robin_placement(partitioner.num_partitions,
                                              num_nodes)
        super().__init__(name, partitioner, placement)
        self.partitions = [HeapFile(name=f"{name}[{pid}]")
                           for pid in range(self.num_partitions)]

    # -- writes ----------------------------------------------------------

    def insert(self, record: Record, partition_key: Any,
               key: Optional[Any] = None) -> Pointer:
        """Insert a record; returns a logical pointer to it.

        ``key`` defaults to ``partition_key`` — the paper's layout for base
        files hash-partitioned by primary key.
        """
        if key is None:
            key = partition_key
        pid = self.partition_of_key(partition_key)
        self.partitions[pid].append(record, key=key)
        return Pointer(self.name, partition_key, key, PointerKind.LOGICAL)

    # -- reads -----------------------------------------------------------

    def lookup(self, pointer: Pointer) -> list[Record]:
        """Resolve a (non-broadcast) pointer to its record(s)."""
        if pointer.file != self.name:
            raise StorageError(
                f"pointer targets {pointer.file!r}, not {self.name!r}")
        if pointer.is_broadcast:
            raise StorageError(
                "broadcast pointers are materialized by the engine before "
                "reaching storage")
        pid = self.partition_of_key(pointer.partition_key)
        return self.lookup_in_partition(pid, pointer)

    def lookup_in_partition(self, partition_id: int,
                            pointer: Pointer) -> list[Record]:
        """Resolve a pointer against one specific partition.

        Used both for normal lookups (partition derived from the pointer)
        and for broadcast pointers replicated to every partition.
        """
        heap = self.partitions[self.partitioner.validate(partition_id)]
        if pointer.kind is PointerKind.PHYSICAL:
            return [heap.get(pointer.key)]
        return heap.lookup(pointer.key)

    def probe_page_ids(self, partition_id: int, pointer: Pointer,
                       page_size: int) -> list[PageId]:
        """The exact heap pages one pointer fetch touches.

        Physical pointers address a single slot's page; logical pointers
        touch every (distinct) page the key's slots land on.  A miss still
        reads the page the key's slot chain would live in — chosen by key
        hash so repeated misses of the same key stay cacheable without two
        different absent keys aliasing each other onto page 0.
        """
        pid = self.partitioner.validate(partition_id)
        heap = self.partitions[pid]
        if pointer.kind is PointerKind.PHYSICAL:
            slots = [pointer.key] if 0 <= pointer.key < len(heap) else []
        else:
            slots = heap.slots_for_key(pointer.key)
        if slots:
            pages = sorted({heap.page_of_slot(slot, page_size)
                            for slot in slots})
        else:
            pages = [stable_hash(pointer.key) % heap.num_pages(page_size)]
        return [PageId(self.name, pid, "heap", page) for page in pages]

    def partition_page_ids(self, partition_id: int,
                           page_size: int) -> list[PageId]:
        """Every heap page of one partition — the scrub sampling universe."""
        pid = self.partitioner.validate(partition_id)
        heap = self.partitions[pid]
        return [PageId(self.name, pid, "heap", page)
                for page in range(heap.num_pages(page_size))]

    def scan_partition(self, partition_id: int) -> Iterator[Record]:
        heap = self.partitions[self.partitioner.validate(partition_id)]
        return heap.scan()

    def scan(self) -> Iterator[Record]:
        """Full scan across all partitions, in partition order."""
        for heap in self.partitions:
            yield from heap.scan()

    def __len__(self) -> int:
        return sum(len(heap) for heap in self.partitions)

    @property
    def total_bytes(self) -> int:
        return sum(heap.total_bytes for heap in self.partitions)

    def partition_bytes(self, partition_id: int) -> int:
        return self.partitions[self.partitioner.validate(partition_id)].total_bytes

    @property
    def avg_record_bytes(self) -> float:
        count = len(self)
        return self.total_bytes / count if count else 0.0


class BtreeFile(File):
    """A partitioned B-tree structure — ReDe's index storage.

    The distinction between a *local* and a *global* secondary index (paper
    Section III-E) is purely one of partitioning:

    * **global**: partitioned by the *index key* itself (``scope='global'``),
      so an equality probe visits exactly one partition;
    * **local**: partition ``i`` of the index holds entries for partition
      ``i`` of the base file (``scope='local'``), so a probe must visit all
      partitions — each node probes its local ones;
    * **replicated**: every node holds a full copy (partition ``i`` is the
      replica on node ``i``), the FRI scheme of the Taniar & Rahayu
      taxonomy the paper cites — probes are always node-local, writes
      amplify by the node count.
    """

    def __init__(self, name: str, partitioner: Partitioner,
                 placement: Optional[Sequence[int]] = None,
                 num_nodes: Optional[int] = None,
                 scope: str = "global",
                 order: int = 64) -> None:
        if scope not in ("global", "local", "replicated"):
            raise StorageError(
                f"index scope must be global|local|replicated: {scope}")
        if placement is None:
            if num_nodes is None:
                raise PartitionError(
                    "BtreeFile needs either a placement or num_nodes")
            placement = round_robin_placement(partitioner.num_partitions,
                                              num_nodes)
        super().__init__(name, partitioner, placement)
        self.scope = scope
        self.order = order
        self.trees = [BPlusTree(order=order)
                      for __ in range(self.num_partitions)]
        self._total_bytes = 0

    # -- writes ----------------------------------------------------------

    def insert(self, index_key: Any, entry: Record,
               partition_key: Optional[Any] = None) -> None:
        """Insert an index entry.

        For a global index, ``partition_key`` defaults to the index key
        (that is what *makes* it global).  For a local index the caller must
        pass the *base file's* partition key so the entry is colocated.
        """
        if self.scope == "replicated":
            # Full replication: the entry lands in every node's copy.
            for tree in self.trees:
                tree.insert(index_key, entry)
            self._total_bytes += (entry.size_bytes
                                  + _ENTRY_OVERHEAD) * len(self.trees)
            return
        if partition_key is None:
            if self.scope == "local":
                raise StorageError(
                    "local index inserts need the base partition key")
            partition_key = index_key
        pid = self.partition_of_key(partition_key)
        self.trees[pid].insert(index_key, entry)
        self._total_bytes += entry.size_bytes + _ENTRY_OVERHEAD

    def bulk_build(self, entries: Iterable[tuple[Any, Record, Any]],
                   fill: float = 0.9) -> None:
        """(Re)build all partitions from ``(index_key, entry,
        partition_key)`` triples using sorted bulk loading."""
        entries = list(entries)
        buckets: list[list[tuple[Any, Record]]] = [
            [] for __ in range(self.num_partitions)]
        for index_key, entry, partition_key in entries:
            if self.scope == "replicated":
                for bucket in buckets:
                    bucket.append((index_key, entry))
                continue
            pid = self.partition_of_key(partition_key)
            buckets[pid].append((index_key, entry))
        for pid, bucket in enumerate(buckets):
            bucket.sort(key=lambda pair: pair[0])
            self.trees[pid] = BPlusTree.bulk_load(bucket, order=self.order,
                                                  fill=fill)
        self._total_bytes = sum(entry.size_bytes + _ENTRY_OVERHEAD
                                for bucket in buckets
                                for __, entry in bucket)

    def set_replica_nodes(self, nodes: Sequence[int]) -> list[int]:
        """Re-home a replicated index to one full copy per listed node.

        Nodes already hosting a replica keep their tree; new nodes get a
        bulk-loaded copy of an existing replica.  Returns the node ids
        that received brand-new copies (the rebalancer charges the copy
        IO *before* calling this — storage stays time-free).
        """
        if self.scope != "replicated":
            raise StorageError(
                "set_replica_nodes applies to replicated indexes only")
        nodes = list(nodes)
        if not nodes:
            raise PartitionError("a replicated index needs >= 1 replica")
        if len(set(nodes)) != len(nodes):
            raise PartitionError("duplicate replica nodes")
        per_replica = self._total_bytes // len(self.trees)
        existing = {node: self.trees[pid]
                    for pid, node in enumerate(self._placement)}
        source = self.trees[0]
        added = []
        trees = []
        for node in nodes:
            tree = existing.get(node)
            if tree is None:
                tree = BPlusTree.bulk_load(list(source.items()),
                                           order=self.order)
                added.append(node)
            trees.append(tree)
        self.trees = trees
        self.partitioner = HashPartitioner(len(nodes))
        self._placement = nodes
        self._total_bytes = per_replica * len(nodes)
        return added

    # -- reads -----------------------------------------------------------

    def lookup(self, pointer: Pointer) -> list[Record]:
        """Equality probe by a pointer whose key is the index key."""
        if pointer.is_broadcast:
            raise StorageError(
                "broadcast pointers are materialized by the engine before "
                "reaching storage")
        pid = self.partition_of_key(pointer.partition_key)
        return self.lookup_in_partition(pid, pointer)

    def lookup_in_partition(self, partition_id: int,
                            pointer: Pointer) -> list[Record]:
        tree = self.trees[self.partitioner.validate(partition_id)]
        return tree.search(pointer.key)

    def range_lookup(self, pointer_range: PointerRange,
                     partition_id: int) -> list[Record]:
        """Range probe of one partition ("a set of *Records* with a range of
        given *Pointers*")."""
        tree = self.trees[self.partitioner.validate(partition_id)]
        return [entry for __, entry in tree.range(
            pointer_range.low, pointer_range.high,
            inclusive_low=pointer_range.inclusive_low,
            inclusive_high=pointer_range.inclusive_high)]

    def probe_io_count(self, num_results: int) -> int:
        """Random reads charged for one probe returning ``num_results``.

        This is the *uncached* cost model: inner nodes are assumed resident
        (they are tiny and hot), so the probe pays one read for the first
        leaf plus one per additional leaf the result set spans.  When the
        owning node has a buffer pool, the engine charges real page
        traversal via :meth:`probe_page_ids` instead.
        """
        leaf_capacity = max(1, self.order - 1)
        return 1 + max(0, math.ceil(num_results / leaf_capacity) - 1)

    def probe_page_ids(self, partition_id: int,
                       target: "Pointer | PointerRange") -> list[PageId]:
        """The exact B-tree pages one probe of ``partition_id`` touches:
        the interior root-to-leaf path, then every leaf the result set
        spans (no "interiors are free" assumption — a cold cache pays for
        the path, a warm one hits it)."""
        pid = self.partitioner.validate(partition_id)
        tree = self.trees[pid]
        if isinstance(target, PointerRange):
            interior, leaves = tree.range_traversal_pages(
                target.low, target.high,
                inclusive_low=target.inclusive_low,
                inclusive_high=target.inclusive_high)
        else:
            interior, leaves = tree.point_traversal_pages(target.key)
        return ([PageId(self.name, pid, "interior", page)
                 for page in interior]
                + [PageId(self.name, pid, "leaf", page) for page in leaves])

    def partition_page_ids(self, partition_id: int,
                           page_size: int = 0) -> list[PageId]:
        """Every B-tree page of one partition — the scrub sampling universe.

        ``page_size`` is accepted for interface symmetry with
        :meth:`PartitionedFile.partition_page_ids` but unused: B-tree pages
        are identified by traversal-order node numbers, not byte offsets.
        """
        pid = self.partitioner.validate(partition_id)
        interior, leaves = self.trees[pid].all_pages()
        return ([PageId(self.name, pid, "interior", page)
                 for page in interior]
                + [PageId(self.name, pid, "leaf", page) for page in leaves])

    def __len__(self) -> int:
        return sum(len(tree) for tree in self.trees)

    @property
    def total_bytes(self) -> int:
        """Approximate size: every entry record plus per-entry key
        overhead, maintained as a running counter on the write paths so
        sizing a cluster around an index stays O(1)."""
        return self._total_bytes
