"""A per-partition record heap with slot addressing and a primary-key map.

One :class:`HeapFile` holds one partition of a
:class:`~repro.storage.files.PartitionedFile`.  Records get monotonically
increasing *slots* (the physical-pointer address space); an optional
in-partition key map supports logical pointers ("a *File* ... locates a
*Record* with an in-partition key", paper Section III-B).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.records import Record
from repro.errors import RecordNotFound

__all__ = ["HeapFile"]


class HeapFile:
    """An append-only heap of records for a single partition."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._records: list[Record] = []
        self._key_map: dict[Any, list[int]] = {}
        self._offsets: list[int] = []
        self.total_bytes = 0

    def append(self, record: Record, key: Optional[Any] = None) -> int:
        """Store ``record``; returns its slot.

        With ``key`` given, the record also becomes addressable logically;
        duplicate keys accumulate (heap files do not enforce uniqueness —
        that is an index concern).
        """
        slot = len(self._records)
        self._records.append(record)
        self._offsets.append(self.total_bytes)
        self.total_bytes += record.size_bytes
        if key is not None:
            self._key_map.setdefault(key, []).append(slot)
        return slot

    def alias(self, key: Any, slot: int) -> None:
        """Register an additional logical key for an existing slot.

        Used by delta→base compaction to keep synthetic delta-record
        addresses (ingest tags) resolvable after their run is folded
        into the heap: queries in flight across the fold still hold
        index entries targeting the tags.  Costs one key-map entry, no
        bytes.
        """
        if not 0 <= slot < len(self._records):
            raise RecordNotFound(
                f"slot {slot} out of range in heap {self.name!r}")
        self._key_map.setdefault(key, []).append(slot)

    def get(self, slot: int) -> Record:
        """Fetch by physical slot."""
        if not 0 <= slot < len(self._records):
            raise RecordNotFound(
                f"slot {slot} out of range in heap {self.name!r}")
        return self._records[slot]

    def lookup(self, key: Any) -> list[Record]:
        """Fetch all records stored under an in-partition key."""
        return [self._records[slot] for slot in self._key_map.get(key, [])]

    def contains_key(self, key: Any) -> bool:
        return key in self._key_map

    def slots_for_key(self, key: Any) -> list[int]:
        """Physical slots stored under an in-partition key."""
        return list(self._key_map.get(key, []))

    def page_of_slot(self, slot: int, page_size: int) -> int:
        """Page number holding ``slot``, under an append-only byte layout
        (records packed in slot order, ``page_size``-byte pages)."""
        if not 0 <= slot < len(self._records):
            raise RecordNotFound(
                f"slot {slot} out of range in heap {self.name!r}")
        return self._offsets[slot] // page_size

    def num_pages(self, page_size: int) -> int:
        """Pages this heap occupies (at least one, even when empty — a
        lookup must still read the page the record would live in)."""
        return max(1, -(-self.total_bytes // page_size))

    def scan(self) -> Iterator[Record]:
        """Iterate every record in slot order."""
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapFile({self.name!r}, records={len(self)})"
