"""Structure statistics: equi-depth histograms over B-tree indexes.

The hybrid optimizer's baseline mode asks the B-tree for *exact* range
cardinalities — free in simulation, but a real system keeps compact
statistics instead.  :class:`EquiDepthHistogram` is that compact form:
``num_buckets`` boundaries splitting the key population into equal-count
runs, built in one ordered pass over an index partition (or all of them).

Estimates:

* :meth:`estimate_range` — interpolated count of keys in ``[low, high]``;
* :meth:`estimate_equal` — count for one key (bucket depth over distinct
  keys in the bucket);
* accuracy is bounded by bucket depth: any range estimate is within one
  bucket of the truth at the ends, the property the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import StorageError
from repro.storage.files import BtreeFile

__all__ = ["EquiDepthHistogram", "build_index_histogram"]


@dataclass(frozen=True)
class _Bucket:
    """Keys in ``[low, high]`` (inclusive ends), with counts."""

    low: Any
    high: Any
    count: int
    distinct: int


class EquiDepthHistogram:
    """Equal-count buckets over an ordered key stream."""

    def __init__(self, buckets: Sequence[_Bucket]) -> None:
        self.buckets = list(buckets)
        self.total = sum(b.count for b in self.buckets)

    @classmethod
    def from_sorted_pairs(cls, pairs, num_buckets: int = 32
                          ) -> "EquiDepthHistogram":
        """Build from ``(key, value)`` pairs in key order.

        Duplicate keys never split across buckets (a bucket boundary is a
        distinct-key boundary), so equality estimates stay meaningful for
        skewed populations.
        """
        if num_buckets < 1:
            raise StorageError("histogram needs at least one bucket")
        # Collapse to (key, multiplicity) runs.
        runs: list[tuple[Any, int]] = []
        for key, __ in pairs:
            if runs and runs[-1][0] == key:
                runs[-1] = (key, runs[-1][1] + 1)
            else:
                if runs and key < runs[-1][0]:
                    raise StorageError(
                        "histogram input must be sorted by key")
                runs.append((key, 1))
        total = sum(count for __, count in runs)
        if total == 0:
            return cls([])
        depth = max(1, total // num_buckets)
        buckets: list[_Bucket] = []
        current: list[tuple[Any, int]] = []
        current_count = 0
        for key, count in runs:
            current.append((key, count))
            current_count += count
            if current_count >= depth and len(buckets) < num_buckets - 1:
                buckets.append(_Bucket(current[0][0], current[-1][0],
                                       current_count, len(current)))
                current, current_count = [], 0
        if current:
            buckets.append(_Bucket(current[0][0], current[-1][0],
                                   current_count, len(current)))
        return cls(buckets)

    # -- estimates ---------------------------------------------------------

    def estimate_range(self, low: Any = None, high: Any = None) -> float:
        """Estimated count of values with key in ``[low, high]``.

        Buckets fully inside the range count whole; boundary buckets
        contribute by uniform interpolation over their distinct keys.
        """
        if not self.buckets:
            return 0.0
        estimate = 0.0
        for bucket in self.buckets:
            if high is not None and _gt(bucket.low, high):
                break
            if low is not None and _lt(bucket.high, low):
                continue
            estimate += bucket.count * self._overlap_fraction(bucket, low,
                                                              high)
        return estimate

    def estimate_equal(self, key: Any) -> float:
        """Estimated count of values under exactly ``key``."""
        for bucket in self.buckets:
            if not _lt(bucket.high, key) and not _gt(bucket.low, key):
                return bucket.count / max(1, bucket.distinct)
        return 0.0

    @staticmethod
    def _overlap_fraction(bucket: _Bucket, low: Any, high: Any) -> float:
        """Fraction of the bucket's key span inside ``[low, high]``."""
        if bucket.low == bucket.high:
            return 1.0
        span = _width(bucket.low, bucket.high)
        if span is None or span <= 0:
            return 1.0  # non-numeric keys: count boundary buckets whole
        lo = bucket.low if low is None or _lt(low, bucket.low) else low
        hi = bucket.high if high is None or _gt(high, bucket.high) else high
        overlap = _width(lo, hi)
        if overlap is None:
            return 1.0
        return max(0.0, min(1.0, overlap / span))

    def __len__(self) -> int:
        return len(self.buckets)


def _lt(a: Any, b: Any) -> bool:
    return a < b


def _gt(a: Any, b: Any) -> bool:
    return a > b


def _width(low: Any, high: Any) -> Optional[float]:
    """Numeric span of a key interval; None for non-numeric keys."""
    if isinstance(low, (int, float)) and isinstance(high, (int, float)):
        return float(high) - float(low)
    return None


def build_index_histogram(index: BtreeFile,
                          num_buckets: int = 32) -> EquiDepthHistogram:
    """Histogram over *all* partitions of a B-tree index.

    Merges the per-partition ordered streams into one global key order
    first (cheap at statistics-collection time; real systems sample).
    """
    pairs: list[tuple[Any, Any]] = []
    trees = index.trees
    if index.scope == "replicated" and trees:
        trees = trees[:1]  # every replica holds the full population
    for tree in trees:
        pairs.extend((key, None) for key, __ in tree.items())
    pairs.sort(key=lambda pair: pair[0])
    return EquiDepthHistogram.from_sorted_pairs(pairs,
                                                num_buckets=num_buckets)
