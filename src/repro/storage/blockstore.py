"""An HDFS-like block store — the substrate of the scan-engine baseline.

The paper's baseline (Apache Impala) reads TPC-H from HDFS, where files are
split into large blocks spread round-robin over the cluster and the only
efficient access path is the full scan ("HDFS is not well-optimized for
non-scan accesses such as lookups").  :class:`BlockStore` reproduces that
profile: records pack into byte-sized blocks placed round-robin; scans
stream whole blocks at sequential bandwidth; point lookups must scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.core.records import Record
from repro.errors import StorageError, UnknownStructure

__all__ = ["Block", "BlockStore"]


@dataclass
class Block:
    """One storage block: a run of records resident on a single node."""

    node_id: int
    records: list[Record] = field(default_factory=list)
    nbytes: int = 0

    def append(self, record: Record) -> None:
        self.records.append(record)
        self.nbytes += record.size_bytes

    def __len__(self) -> int:
        return len(self.records)


class BlockStore:
    """Block-structured files with round-robin placement across nodes."""

    def __init__(self, num_nodes: int, block_size: int = 4 * 1024 * 1024) -> None:
        if num_nodes < 1:
            raise StorageError("block store needs at least one node")
        if block_size < 1:
            raise StorageError("block size must be positive")
        self.num_nodes = num_nodes
        self.block_size = block_size
        self._files: dict[str, list[Block]] = {}
        self._next_node = 0

    # -- loading ---------------------------------------------------------

    def load(self, name: str, records: Iterable[Record]) -> list[Block]:
        """Create file ``name`` from ``records``, packed into blocks.

        Blocks close when they exceed ``block_size`` bytes and are placed
        round-robin, continuing from wherever the previous load stopped
        (mirroring the paper's "distributed into the nodes by round-robin").
        """
        if name in self._files:
            raise StorageError(f"block file {name!r} already exists")
        blocks: list[Block] = []
        current: Optional[Block] = None
        for record in records:
            if current is None:
                current = Block(node_id=self._next_node)
                self._next_node = (self._next_node + 1) % self.num_nodes
            current.append(record)
            if current.nbytes >= self.block_size:
                blocks.append(current)
                current = None
        if current is not None and current.records:
            blocks.append(current)
        self._files[name] = blocks
        return blocks

    # -- access ----------------------------------------------------------

    def blocks(self, name: str) -> list[Block]:
        try:
            return self._files[name]
        except KeyError:
            raise UnknownStructure(f"no block file named {name!r}") from None

    def blocks_on_node(self, name: str, node_id: int) -> list[Block]:
        return [block for block in self.blocks(name)
                if block.node_id == node_id]

    def scan(self, name: str) -> Iterator[Record]:
        """All records of the file, block by block."""
        for block in self.blocks(name):
            yield from block.records

    def point_lookup(self, name: str,
                     predicate: Callable[[Record], bool]) -> tuple[list[Record], int]:
        """Find matching records the only way a block store can: scanning.

        Returns ``(matches, bytes_scanned)`` — the cost term is what the
        storage-ablation benchmark contrasts with the DFS's indexed lookups.
        """
        matches: list[Record] = []
        scanned = 0
        for block in self.blocks(name):
            scanned += block.nbytes
            matches.extend(r for r in block.records if predicate(r))
        return matches, scanned

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def names(self) -> list[str]:
        return sorted(self._files)

    def file_bytes(self, name: str) -> int:
        return sum(block.nbytes for block in self.blocks(name))

    def num_records(self, name: str) -> int:
        return sum(len(block) for block in self.blocks(name))
