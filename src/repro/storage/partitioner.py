"""Partitioners: map a partition key to a partition id.

Paper, Section III-B: "a *File* takes a partition key from a given *Pointer*,
applies it to a pre-configured *Partitioner* (e.g., HashPartitioner or
RangePartitioner) to locate a partition".

Hashing must be stable across processes (Python's built-in ``hash`` for
``str`` is salted per process), so :class:`HashPartitioner` uses FNV-1a over
a canonical byte encoding of the key.
"""

from __future__ import annotations

import abc
import bisect
from typing import Any, Sequence

from repro.errors import PartitionError

__all__ = ["Partitioner", "HashPartitioner", "RangePartitioner", "stable_hash"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _canonical_bytes(key: Any) -> bytes:
    """Encode a partition key deterministically.

    Integers encode by value (so ``1`` and ``1.0`` agree), strings by UTF-8,
    tuples recursively with separators.
    """
    if isinstance(key, bool):
        return b"b1" if key else b"b0"
    if isinstance(key, int):
        return b"i" + str(key).encode()
    if isinstance(key, float):
        if key.is_integer():
            return b"i" + str(int(key)).encode()
        return b"f" + repr(key).encode()
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"y" + key
    if isinstance(key, tuple):
        parts = b"".join(_canonical_bytes(item) + b"\x00" for item in key)
        return b"t" + parts
    if key is None:
        raise PartitionError("cannot partition on a null key (broadcast "
                             "pointers are handled by the engine)")
    return b"r" + repr(key).encode("utf-8")


def stable_hash(key: Any) -> int:
    """64-bit FNV-1a hash of a canonical key encoding; process-stable."""
    data = _canonical_bytes(key)
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


class Partitioner(abc.ABC):
    """Maps partition keys to partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise PartitionError(
                f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    @abc.abstractmethod
    def partition(self, key: Any) -> int:
        """Return the partition id for ``key``."""

    def validate(self, partition_id: int) -> int:
        if not 0 <= partition_id < self.num_partitions:
            raise PartitionError(
                f"partition id {partition_id} out of range "
                f"[0, {self.num_partitions})")
        return partition_id


class HashPartitioner(Partitioner):
    """Stable-hash partitioning — the paper's default for base files and
    global indexes."""

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions

    def __repr__(self) -> str:
        return f"HashPartitioner({self.num_partitions})"


class RangePartitioner(Partitioner):
    """Range partitioning over sorted split boundaries.

    ``boundaries`` are the *upper-exclusive* split points: with boundaries
    ``[10, 20]`` keys < 10 go to partition 0, keys in [10, 20) to partition
    1, and keys >= 20 to partition 2 (``num_partitions == len(boundaries)+1``).
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        boundaries = list(boundaries)
        if sorted(boundaries) != boundaries:
            raise PartitionError("range boundaries must be sorted")
        if len(set(map(repr, boundaries))) != len(boundaries):
            raise PartitionError("range boundaries must be distinct")
        super().__init__(len(boundaries) + 1)
        self.boundaries = boundaries

    def partition(self, key: Any) -> int:
        return bisect.bisect_right(self.boundaries, key)

    def partition_range(self, low: Any, high: Any) -> range:
        """Partition ids that may hold keys in ``[low, high]``.

        Unlike hash partitioning, a range partitioner lets range probes prune
        partitions — a structural advantage ReDe can exploit.
        """
        first = 0 if low is None else bisect.bisect_right(self.boundaries, low)
        last = (self.num_partitions - 1 if high is None
                else bisect.bisect_right(self.boundaries, high))
        return range(first, last + 1)

    def __repr__(self) -> str:
        return f"RangePartitioner({self.boundaries!r})"
