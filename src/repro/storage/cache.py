"""Per-node buffer pool: an explicit memory tier over the simulated disks.

The paper's Figure 7 regime is IOPS-bound — every dereference pays a random
read — but real lake nodes have RAM, and caching layers are the dominant
lever for lake query latency (Weintraub, "Optimizing Data Lakes' Queries";
the data-lake survey lists tiered storage as a core lake function).  This
module supplies the missing tier:

* :class:`PageId` — identity of one on-disk page: ``(file, partition,
  page_kind, page_no)``.  Page kinds are ``"interior"`` / ``"leaf"`` for
  B-tree nodes and ``"heap"`` for base-file pages; the split is what lets
  :class:`CacheStats` report per-kind hit rates (B-tree interiors are tiny
  and hot; heap pages are large and often scanned once).
* :class:`BufferPool` — a byte-budgeted page cache with pluggable eviction:
  ``"lru"`` (classic stack), ``"clock"`` (second-chance FIFO), and ``"2q"``
  (a segmented-LRU variant of the 2Q policy: new pages enter a small
  probationary FIFO and must be re-referenced to earn a slot in the
  protected LRU, which is what makes one-shot scans unable to flush the
  hot set).
* :class:`CacheStats` — an aggregatable snapshot (hits, misses, evictions,
  resident bytes, per-kind hit rate).

Layering: this module is synchronous, time-free, and import-leaf — it knows
nothing about the simulator or about who owns the pool.  A pool *instance*
lives on each :class:`~repro.cluster.node.Node` (RAM is hardware), and the
time accounting for hits and misses happens in ``engine/access.py``, which
is the only layer allowed to charge virtual time.
"""

from __future__ import annotations

import zlib
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple, Optional

from repro.errors import StorageError

__all__ = ["PageId", "page_checksum", "CacheStats", "BufferPool",
           "CACHE_POLICIES"]

#: Recognised eviction policies, in documentation order.
CACHE_POLICIES = ("lru", "clock", "2q")

#: Fraction of the byte budget the 2Q policy reserves for its probationary
#: FIFO (the 2Q paper's ``Kin``); one-shot pages live and die here.
_2Q_PROBATION_FRACTION = 0.25


class PageId(NamedTuple):
    """Identity of one cacheable page.

    ``page_kind`` is ``"interior"`` / ``"leaf"`` (B-tree nodes) or
    ``"heap"`` (base-file pages); ``page_no`` is stable for the lifetime of
    the owning structure (B-tree nodes are numbered on first traversal,
    heap pages by byte offset).
    """

    file: str
    partition: int
    page_kind: str
    page_no: int


def page_checksum(page: PageId) -> int:
    """Expected CRC-32 of one page, derived from its identity.

    The simulator stores no page bytes, so a checksum over content would be
    vacuous; instead each page's *expected* checksum is a pure function of
    its identity, and corruption is modeled as the stored checksum failing
    to match it (the injector's per-page verdict decides which pages fail).
    The value is stable across processes — ``zlib.crc32``, not ``hash()``
    — so scrub digests and error messages are reproducible.
    """
    return zlib.crc32(
        f"{page.file}:{page.partition}:{page.page_kind}:{page.page_no}"
        .encode())


@dataclass
class CacheStats:
    """Aggregatable snapshot of one or more buffer pools."""

    capacity_bytes: int = 0
    resident_bytes: int = 0
    resident_pages: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    hits_by_kind: Counter = field(default_factory=Counter)
    misses_by_kind: Counter = field(default_factory=Counter)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Overall hit rate in [0, 1]; 0.0 with no lookups."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def hit_rate_for(self, kind: str) -> float:
        """Hit rate of one page kind (``interior`` / ``leaf`` / ``heap``)."""
        total = self.hits_by_kind[kind] + self.misses_by_kind[kind]
        return self.hits_by_kind[kind] / total if total else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """This snapshot combined with another (cluster-level rollup)."""
        return CacheStats(
            capacity_bytes=self.capacity_bytes + other.capacity_bytes,
            resident_bytes=self.resident_bytes + other.resident_bytes,
            resident_pages=self.resident_pages + other.resident_pages,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
            hits_by_kind=self.hits_by_kind + other.hits_by_kind,
            misses_by_kind=self.misses_by_kind + other.misses_by_kind,
        )

    @classmethod
    def aggregate(cls, snapshots: Iterable["CacheStats"]) -> "CacheStats":
        total = cls()
        for snapshot in snapshots:
            total = total.merged(snapshot)
        return total

    def summary(self) -> dict:
        """Flat dict view for reports and benchmark tables."""
        out = {
            "capacity_bytes": self.capacity_bytes,
            "resident_bytes": self.resident_bytes,
            "resident_pages": self.resident_pages,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }
        for kind in ("interior", "leaf", "heap"):
            out[f"hit_rate_{kind}"] = self.hit_rate_for(kind)
        return out


# -- eviction policies -----------------------------------------------------
#
# A policy only orders pages; residency, byte accounting, and statistics
# stay in the pool.  Contract: every resident page is known to the policy;
# ``evict()`` removes and returns the victim; ``discard`` forgets a page
# removed for non-capacity reasons (invalidation).


class _LruPolicy:
    """Classic LRU: hits move to the tail, victims come from the head."""

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def admit(self, page: PageId) -> None:
        self._order[page] = None

    def touch(self, page: PageId) -> None:
        self._order.move_to_end(page)

    def evict(self) -> PageId:
        page, __ = self._order.popitem(last=False)
        return page

    def discard(self, page: PageId) -> None:
        self._order.pop(page, None)


class _ClockPolicy:
    """Second-chance FIFO (the classic CLOCK approximation of LRU).

    A hit sets the page's reference bit; the hand sweeps from the oldest
    page, clearing set bits (the second chance) until it finds a clear one.
    """

    def __init__(self) -> None:
        self._ref: OrderedDict[PageId, bool] = OrderedDict()

    def admit(self, page: PageId) -> None:
        self._ref[page] = False

    def touch(self, page: PageId) -> None:
        self._ref[page] = True

    def evict(self) -> PageId:
        while True:
            page, referenced = self._ref.popitem(last=False)
            if not referenced:
                return page
            self._ref[page] = False  # re-queue with its bit cleared

    def discard(self, page: PageId) -> None:
        self._ref.pop(page, None)


class _TwoQPolicy:
    """Scan-resistant 2Q (segmented-LRU flavour).

    New pages enter a probationary FIFO capped at a quarter of the byte
    budget; a hit while on probation promotes the page to the protected
    LRU.  Victims come from probation whenever it is over its target (or
    the protected segment is empty), so a one-shot scan churns only the
    probationary quarter and the hot set survives in the protected LRU.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self._probation_target = int(capacity_bytes
                                     * _2Q_PROBATION_FRACTION)
        self._probation: OrderedDict[PageId, int] = OrderedDict()
        self._protected: OrderedDict[PageId, int] = OrderedDict()
        self._probation_bytes = 0

    def admit(self, page: PageId, nbytes: int = 0) -> None:
        self._probation[page] = nbytes
        self._probation_bytes += nbytes

    def touch(self, page: PageId) -> None:
        if page in self._protected:
            self._protected.move_to_end(page)
            return
        nbytes = self._probation.pop(page)
        self._probation_bytes -= nbytes
        self._protected[page] = nbytes

    def evict(self) -> PageId:
        if self._probation and (not self._protected
                                or self._probation_bytes
                                > self._probation_target):
            page, nbytes = self._probation.popitem(last=False)
            self._probation_bytes -= nbytes
            return page
        page, __ = self._protected.popitem(last=False)
        return page

    def discard(self, page: PageId) -> None:
        if page in self._probation:
            self._probation_bytes -= self._probation.pop(page)
        else:
            self._protected.pop(page, None)


def _make_policy(policy: str, capacity_bytes: int):
    if policy == "lru":
        return _LruPolicy()
    if policy == "clock":
        return _ClockPolicy()
    if policy == "2q":
        return _TwoQPolicy(capacity_bytes)
    raise StorageError(
        f"unknown cache policy {policy!r}; expected one of {CACHE_POLICIES}")


class BufferPool:
    """A byte-budgeted page cache for one node.

    The pool is pure bookkeeping: ``lookup`` answers "is this page
    resident?" (and records the hit or miss), ``insert`` makes it resident,
    evicting under the configured policy until the byte budget holds.
    Charging virtual time for the answer is the engine's job.
    """

    def __init__(self, capacity_bytes: int, policy: str = "lru",
                 name: str = "") -> None:
        if capacity_bytes < 0:
            raise StorageError(
                f"cache capacity must be >= 0, got {capacity_bytes}")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self._policy = _make_policy(policy, capacity_bytes)
        self._pages: dict[PageId, int] = {}
        self.resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.hits_by_kind: Counter = Counter()
        self.misses_by_kind: Counter = Counter()

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: PageId) -> bool:
        return page in self._pages

    # -- the hot path ----------------------------------------------------

    def lookup(self, page: PageId) -> bool:
        """True when ``page`` is resident; records the hit or miss."""
        if page in self._pages:
            self.hits += 1
            self.hits_by_kind[page.page_kind] += 1
            self._policy.touch(page)
            return True
        self.misses += 1
        self.misses_by_kind[page.page_kind] += 1
        return False

    def insert(self, page: PageId, nbytes: int) -> None:
        """Make ``page`` resident, evicting until the budget holds.

        A page larger than the whole budget is never cached; re-inserting a
        resident page (two simulated threads missing on it concurrently)
        just refreshes its recency.
        """
        if nbytes <= 0:
            raise StorageError(f"page bytes must be positive, got {nbytes}")
        if nbytes > self.capacity_bytes:
            return
        if page in self._pages:
            self._policy.touch(page)
            return
        while self.resident_bytes + nbytes > self.capacity_bytes:
            victim = self._policy.evict()
            self.resident_bytes -= self._pages.pop(victim)
            self.evictions += 1
        self._pages[page] = nbytes
        self.resident_bytes += nbytes
        if isinstance(self._policy, _TwoQPolicy):
            self._policy.admit(page, nbytes)
        else:
            self._policy.admit(page)

    # -- invalidation ----------------------------------------------------

    def invalidate_file(self, file_name: str,
                        partition: Optional[int] = None) -> int:
        """Drop every resident page of ``file_name`` (optionally one
        partition); returns how many pages were dropped.

        Used when a structure is rebuilt: its old pages no longer describe
        anything on disk, so serving hits from them would be lying.
        """
        stale = [page for page in self._pages
                 if page.file == file_name
                 and (partition is None or page.partition == partition)]
        for page in stale:
            self.resident_bytes -= self._pages.pop(page)
            self._policy.discard(page)
        self.invalidations += len(stale)
        return len(stale)

    def drop_all(self) -> int:
        """Empty the pool without counting evictions (node crash: the RAM
        is simply gone).  Statistics survive for post-mortem reporting."""
        dropped = len(self._pages)
        self._pages.clear()
        self.resident_bytes = 0
        self._policy = _make_policy(self.policy, self.capacity_bytes)
        return dropped

    # -- reporting -------------------------------------------------------

    def stats(self) -> CacheStats:
        """Point-in-time snapshot (counters are copied, not shared)."""
        return CacheStats(
            capacity_bytes=self.capacity_bytes,
            resident_bytes=self.resident_bytes,
            resident_pages=len(self._pages),
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
            hits_by_kind=Counter(self.hits_by_kind),
            misses_by_kind=Counter(self.misses_by_kind),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BufferPool({self.name!r}, {self.policy}, "
                f"{self.resident_bytes}/{self.capacity_bytes}B, "
                f"{len(self._pages)} pages)")
