"""Dataset persistence: JSON-lines record files and a generation cache.

The lake stores *raw* records, and raw records are what is worth
persisting: structures are derived (the catalog rebuilds them from
registered access methods), but generated datasets are expensive to make
and must be byte-identical across benchmark runs.

* :func:`save_records` / :func:`load_records` — one JSON value per line;
  mapping payloads round-trip as mappings, text payloads as text.
* :class:`DatasetCache` — memoizes ``generate()`` calls on disk, keyed by
  a caller-supplied name and parameter dict, so repeated benchmark runs
  skip regeneration.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.core.records import Record
from repro.errors import StorageError

__all__ = ["save_records", "load_records", "DatasetCache"]

_TEXT_KEY = "__text__"


def _encode(record: Record) -> str:
    data = record.data
    if isinstance(data, str):
        return json.dumps({_TEXT_KEY: data}, ensure_ascii=False)
    if isinstance(data, Mapping):
        if _TEXT_KEY in data:
            raise StorageError(
                f"mapping payloads may not use the reserved key "
                f"{_TEXT_KEY!r}")
        return json.dumps(dict(data), ensure_ascii=False, sort_keys=True)
    raise StorageError(
        f"only mapping and text payloads persist; got "
        f"{type(data).__name__}")


def _decode(line: str) -> Record:
    data = json.loads(line)
    if isinstance(data, dict) and set(data) == {_TEXT_KEY}:
        return Record(data[_TEXT_KEY])
    return Record(data)


def save_records(path: Union[str, pathlib.Path],
                 records: Iterable[Record]) -> int:
    """Write records to ``path`` as JSON lines; returns the count."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(_encode(record))
            handle.write("\n")
            count += 1
    return count


def load_records(path: Union[str, pathlib.Path]) -> list[Record]:
    """Read records back from a JSON-lines file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise StorageError(f"no dataset file at {path}")
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(_decode(line))
    return records


class DatasetCache:
    """Disk memoization of dataset generation.

    Example::

        cache = DatasetCache("~/.cache/repro")
        claims = cache.get_or_generate(
            "claims", {"n": 20000, "seed": 9},
            lambda: ClaimsGenerator(num_claims=20000, seed=9).generate())

    Note: JSON round-trips lose non-JSON scalar types (tuples become
    lists); the built-in generators only emit JSON-safe payloads.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, name: str, params: Mapping[str, Any]) -> pathlib.Path:
        digest = hashlib.sha256(
            json.dumps(dict(params), sort_keys=True).encode()).hexdigest()
        return self.directory / f"{name}-{digest[:16]}.jsonl"

    def get_or_generate(self, name: str, params: Mapping[str, Any],
                        generate: Callable[[], Iterable[Record]]
                        ) -> list[Record]:
        """Return the cached dataset, generating and storing it on miss."""
        path = self._path_for(name, params)
        if path.exists():
            return load_records(path)
        records = list(generate())
        save_records(path, records)
        return records

    def contains(self, name: str, params: Mapping[str, Any]) -> bool:
        return self._path_for(name, params).exists()

    def invalidate(self, name: str,
                   params: Optional[Mapping[str, Any]] = None) -> int:
        """Drop cached entries; all of ``name``'s when params is None."""
        removed = 0
        if params is not None:
            path = self._path_for(name, params)
            if path.exists():
                path.unlink()
                removed = 1
            return removed
        for path in self.directory.glob(f"{name}-*.jsonl"):
            path.unlink()
            removed += 1
        return removed
