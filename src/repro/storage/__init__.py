"""Storage substrate: partitioners, B+trees, heap files, the I/O abstraction
(``PartitionedFile``/``BtreeFile``), the simple DFS, and the HDFS-like block
store."""

from repro.storage.blockstore import Block, BlockStore
from repro.storage.btree import BPlusTree
from repro.storage.cache import (
    CACHE_POLICIES,
    BufferPool,
    CacheStats,
    PageId,
)
from repro.storage.dfs import DistributedFileSystem
from repro.storage.files import (
    BtreeFile,
    File,
    IndexEntry,
    PartitionedFile,
    round_robin_placement,
)
from repro.storage.heapfile import HeapFile
from repro.storage.persist import DatasetCache, load_records, \
    save_records
from repro.storage.stats import EquiDepthHistogram, build_index_histogram
from repro.storage.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    stable_hash,
)

__all__ = [
    "Block",
    "BlockStore",
    "BPlusTree",
    "BufferPool",
    "CacheStats",
    "CACHE_POLICIES",
    "PageId",
    "DistributedFileSystem",
    "BtreeFile",
    "File",
    "IndexEntry",
    "PartitionedFile",
    "round_robin_placement",
    "HeapFile",
    "DatasetCache",
    "EquiDepthHistogram",
    "build_index_histogram",
    "load_records",
    "save_records",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "stable_hash",
]
