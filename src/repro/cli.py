"""Command-line interface: quick demos of the reproduction.

Usage::

    python -m repro demo                 # 60-second LakeHarbor walkthrough
    python -m repro fig7 [--scale 0.002] # regenerate Figure 7's series
    python -m repro fig9 [--claims 5000] # regenerate Figure 9's comparison
    python -m repro inventory            # structures of a demo lake

The CLI uses reduced default scales so every command finishes in seconds;
the full benchmark harness lives in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.baselines import ClaimsWarehouse, ScanEngine
from repro.bench import SweepTable, format_factor, format_seconds
from repro.datagen import ClaimsGenerator
from repro.engine import ReDeExecutor
from repro.queries import (
    CASE_STUDY_QUERIES,
    ClaimsLake,
    TpchWorkload,
    canonical_q5_rows_rede,
    canonical_q5_rows_scan,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of LakeHarbor/ReDe (ICDE 2024)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the quickstart walkthrough")

    fig7 = commands.add_parser("fig7",
                               help="regenerate the Figure 7 series")
    fig7.add_argument("--scale", type=float, default=0.002,
                      help="TPC-H scale factor (default 0.002)")
    fig7.add_argument("--nodes", type=int, default=8)
    fig7.add_argument("--cache-mb", type=float, default=0.0,
                      help="per-node buffer-pool size in MiB for the ReDe "
                           "engines (default 0 = uncached)")
    fig7.add_argument("--cache-policy", choices=("lru", "clock", "2q"),
                      default="lru",
                      help="buffer-pool eviction policy (default lru)")
    fig7.add_argument("--batch-size", type=int, default=1,
                      help="dereference batch size for the ReDe engines "
                           "(default 1 = per-record dispatch)")

    fig9 = commands.add_parser("fig9",
                               help="regenerate the Figure 9 comparison")
    fig9.add_argument("--claims", type=int, default=5000,
                      help="number of synthetic claims (default 5000)")

    commands.add_parser("inventory",
                        help="show a demo lake's structure catalog")

    plan = commands.add_parser(
        "plan",
        help="show the per-stage planner's decision table for Q5'")
    plan.add_argument("--scale", type=float, default=0.002,
                      help="TPC-H scale factor (default 0.002)")
    plan.add_argument("--nodes", type=int, default=8)
    plan.add_argument("--selectivity", type=float, default=0.2,
                      help="Q5' date-range selectivity (default 0.2)")
    plan.add_argument("--execute", action="store_true",
                      help="also run the chosen plan and report its "
                           "simulated runtime")
    plan.add_argument("--batch-size", type=int, default=1,
                      help="dereference batch size for execution "
                           "(default 1 = per-record dispatch)")
    plan.add_argument("--adaptive", type=float, default=None,
                      metavar="THRESHOLD",
                      help="enable runtime re-optimization: a stage whose "
                           "observed cardinality exceeds its estimate by "
                           "this factor re-prices the remaining stages "
                           "and may switch them to scan-backed access "
                           "mid-query (default off)")

    chaos = commands.add_parser(
        "chaos",
        help="run a fault-injected Q5' and print the failure report")
    chaos.add_argument("--scale", type=float, default=0.002,
                       help="TPC-H scale factor (default 0.002)")
    chaos.add_argument("--nodes", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-plan seed (default 7)")
    chaos.add_argument("--rate", type=float, default=0.05,
                       help="transient IO-error rate (default 0.05)")
    chaos.add_argument("--drop-rate", type=float, default=0.0,
                       help="network message drop rate (default 0)")
    chaos.add_argument("--policy", choices=("fail", "retry", "skip"),
                       default="retry",
                       help="on_error policy (default retry)")
    chaos.add_argument("--max-retries", type=int, default=6,
                       help="retry budget per dereference (default 6; a "
                            "Q5'-sized job issues thousands of "
                            "dereferences, so exhausting a small budget "
                            "somewhere is near-certain)")
    chaos.add_argument("--crash-node", type=int, default=None,
                       help="also crash this node mid-run")
    chaos.add_argument("--crash-at", type=float, default=0.01,
                       help="crash time in simulated seconds "
                            "(default 0.01)")
    chaos.add_argument("--corruption", type=float, default=0.0,
                       help="per-page silent-corruption probability "
                            "applied to every index structure (default 0;"
                            " corrupt probes quarantine the structure and"
                            " re-serve the stage by scan)")
    chaos.add_argument("--crash-during-rebalance", type=int, default=None,
                       metavar="N",
                       help="join a node, rebalance concurrently with the "
                            "query, and crash a migration endpoint when "
                            "move N starts (0 = the very first move); the "
                            "rebalance must still converge with the "
                            "catalog consistent")
    chaos.add_argument("--rebalance-victim", choices=("source", "target"),
                       default="target",
                       help="which end of the in-flight migration the "
                            "rebalance-keyed crash kills (default target)")

    scrub = commands.add_parser(
        "scrub",
        help="corrupt index pages, then detect/repair them with the "
             "online scrub worker")
    scrub.add_argument("--scale", type=float, default=0.002,
                       help="TPC-H scale factor (default 0.002)")
    scrub.add_argument("--nodes", type=int, default=4)
    scrub.add_argument("--seed", type=int, default=7,
                       help="fault-plan seed (default 7)")
    scrub.add_argument("--corruption", type=float, default=0.1,
                       help="per-page corruption probability for every "
                            "index structure (default 0.1)")
    scrub.add_argument("--sample-every", type=int, default=1,
                       help="scrub every Nth page per partition "
                            "(default 1 = full scrub)")

    serve = commands.add_parser(
        "serve",
        help="drive open-loop traffic through the admission-controlled "
             "query gateway and print per-tenant serving metrics")
    serve.add_argument("--rate", type=float, default=60.0,
                       help="arrivals per simulated second per tenant "
                            "(default 60)")
    serve.add_argument("--duration", type=float, default=1.0,
                       help="simulated seconds of traffic (default 1.0)")
    serve.add_argument("--nodes", type=int, default=4)
    serve.add_argument("--tenants", type=int, default=2,
                       help="number of interactive tenants (default 2)")
    serve.add_argument("--slots", type=int, default=4,
                       help="concurrent serving slots (default 4)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="global queue-depth limit (default 32)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in simulated seconds "
                            "(default none)")
    serve.add_argument("--seed", type=int, default=11,
                       help="arrival-process seed (default 11)")
    serve.add_argument("--maintenance", action="store_true",
                       help="also submit background index builds on the "
                            "maintenance lane")
    serve.add_argument("--batch-size", type=int, default=1,
                       help="dereference batch size for the serving "
                            "engine (default 1 = per-record dispatch)")
    serve.add_argument("--result-cache-mb", type=float, default=0.0,
                       help="semantic result-cache budget in MB; repeated "
                            "(and subsumed) queries are served instantly "
                            "from cached results until an ingest commit "
                            "or compaction invalidates them (default 0 = "
                            "no cache)")

    ingest = commands.add_parser(
        "ingest",
        help="stream IoT sensor batches into a lake through the gateway's "
             "background lane while interactive queries run")
    ingest.add_argument("--duration", type=float, default=2.0,
                        help="simulated seconds of streaming (default 2.0)")
    ingest.add_argument("--nodes", type=int, default=4)
    ingest.add_argument("--sensors", type=int, default=64,
                        help="fleet size (default 64)")
    ingest.add_argument("--batch-size", type=int, default=100,
                        help="readings per micro-batch (default 100)")
    ingest.add_argument("--batch-rate", type=float, default=8.0,
                        help="micro-batch arrivals per simulated second "
                             "(default 8)")
    ingest.add_argument("--query-rate", type=float, default=20.0,
                        help="interactive queries per simulated second "
                             "(default 20)")
    ingest.add_argument("--policy", choices=("none", "lazy", "eager"),
                        default="lazy",
                        help="delta compaction policy (default lazy)")
    ingest.add_argument("--seed", type=int, default=11,
                        help="arrival-process seed (default 11)")
    return parser


def _run_demo_inline() -> int:
    """The quickstart flow, inlined so the CLI works without examples/."""
    from repro.core import (
        AccessMethodDefinition,
        FileLookupDereferencer,
        IndexEntryReferencer,
        IndexRangeDereferencer,
        JobBuilder,
        MappingInterpreter,
        PointerRange,
        Record,
        StructureCatalog,
    )
    from repro.cluster import Cluster
    from repro.config import laptop_cluster_spec
    from repro.storage import DistributedFileSystem

    dfs = DistributedFileSystem(num_nodes=4)
    catalog = StructureCatalog(dfs)
    events = [Record({"event_id": i, "severity": i % 100})
              for i in range(5000)]
    catalog.register_file("events", events, lambda r: r["event_id"])
    catalog.register_access_method(AccessMethodDefinition(
        name="idx_severity", base_file="events",
        interpreter=MappingInterpreter(), key_field="severity",
        scope="global"))
    job = (JobBuilder("severe")
           .dereference(IndexRangeDereferencer("idx_severity"))
           .reference(IndexEntryReferencer("events"))
           .dereference(FileLookupDereferencer("events"))
           .input(PointerRange("idx_severity", 98, 99))
           .build())
    executor = ReDeExecutor(Cluster(laptop_cluster_spec(4)), catalog,
                            mode="smpe")
    result = executor.execute(job)
    print(f"lazily built {catalog.build_log}; fetched {len(result.rows)} "
          f"of 5000 events in {result.metrics.elapsed_seconds * 1e3:.1f} "
          "simulated ms "
          f"(peak {result.metrics.peak_parallelism} threads)")
    return 0


def cmd_fig7(scale: float, nodes: int, cache_mb: float = 0.0,
             cache_policy: str = "lru", batch_size: int = 1) -> int:
    from repro.config import EngineConfig

    workload = TpchWorkload(scale_factor=scale, seed=1, num_nodes=nodes,
                            block_size=256 * 1024)
    config = EngineConfig(batch_size=batch_size)
    cache_bytes = int(cache_mb * 1024 * 1024)
    caption = (f", cache {cache_mb:g}MiB/{cache_policy}" if cache_bytes
               else "")
    if batch_size > 1:
        caption += f", batch {batch_size}"
    table = SweepTable(
        title=f"Figure 7 (SF={scale}, {nodes} nodes{caption})",
        columns=["selectivity", "Impala-like", "ReDe w/o SMPE",
                 "ReDe w/ SMPE", "SMPE vs Impala"])
    hit_totals = miss_totals = 0
    for selectivity in (0.001, 0.01, 0.05, 0.2, 0.4):
        low, high = workload.date_range(selectivity)
        job = workload.q5_job(low, high)
        plan = workload.q5_scan_plan(low, high)
        scan = ScanEngine(workload.make_cluster(scan_seconds=0.25),
                          workload.blockstore).execute(plan)
        smpe = ReDeExecutor(
            workload.make_cluster(scan_seconds=0.25,
                                  cache_bytes=cache_bytes,
                                  cache_policy=cache_policy),
            workload.catalog, config=config, mode="smpe").execute(job)
        part = ReDeExecutor(
            workload.make_cluster(scan_seconds=0.25,
                                  cache_bytes=cache_bytes,
                                  cache_policy=cache_policy),
            workload.catalog, config=config,
            mode="partitioned").execute(job)
        assert canonical_q5_rows_rede(smpe) == canonical_q5_rows_scan(scan)
        hit_totals += smpe.metrics.cache_hits + part.metrics.cache_hits
        miss_totals += smpe.metrics.cache_misses + part.metrics.cache_misses
        table.add_row(selectivity,
                      format_seconds(scan.metrics.elapsed_seconds),
                      format_seconds(part.metrics.elapsed_seconds),
                      format_seconds(smpe.metrics.elapsed_seconds),
                      format_factor(scan.metrics.elapsed_seconds
                                    / smpe.metrics.elapsed_seconds))
    print(table.render())
    if cache_bytes:
        lookups = hit_totals + miss_totals
        rate = hit_totals / lookups if lookups else 0.0
        print(f"buffer pools: {hit_totals} hits / {miss_totals} misses "
              f"across the sweep ({rate:.1%} hit rate; pools are cold per "
              "run — each cluster is fresh)")
    return 0


def cmd_fig9(num_claims: int) -> int:
    claims = ClaimsGenerator(num_claims=num_claims, seed=9).generate()
    lake = ClaimsLake(claims, num_nodes=4)
    warehouse = ClaimsWarehouse(claims, num_nodes=4)
    table = SweepTable(
        title=f"Figure 9 ({num_claims} claims): record accesses, "
              "normalized to the warehouse",
        columns=["query", "DWH", "ReDe", "normalized"])
    for query_id, (__, diseases, medicines) in CASE_STUDY_QUERIES.items():
        lake_total, lake_result = lake.query_expenses(diseases, medicines)
        dw_total, dw_result = warehouse.query_expenses(diseases, medicines)
        assert lake_total == dw_total
        dw = dw_result.metrics.record_accesses
        rede = lake_result.metrics.record_accesses
        table.add_row(query_id, dw, rede, round(rede / dw, 3))
    print(table.render())
    return 0


def cmd_chaos(scale: float, nodes: int, seed: int, rate: float,
              drop_rate: float, policy: str, max_retries: int,
              crash_node: Optional[int], crash_at: float,
              corruption: float = 0.0,
              crash_during_rebalance: Optional[int] = None,
              rebalance_victim: str = "target") -> int:
    """A small fault-injected Q5′: chaos run vs fault-free run, plus the
    structured FailureReport of everything the chaos run lost."""
    from repro.cluster import (FaultPlan, NodeCrash, PageCorruption,
                               RebalanceCrash, TopologyController)
    from repro.config import EngineConfig

    workload = TpchWorkload(scale_factor=scale, seed=1, num_nodes=nodes,
                            block_size=256 * 1024)
    low, high = workload.date_range(0.2)
    job = workload.q5_job(low, high)

    clean = ReDeExecutor(workload.make_cluster(), workload.catalog,
                         mode="smpe").execute(job)

    crashes = ((NodeCrash(crash_node, crash_at),)
               if crash_node is not None else ())
    corruptions = (tuple(PageCorruption(name, corruption)
                         for name in workload.catalog.access_methods())
                   if corruption > 0.0 else ())
    rebalance_crashes = (
        (RebalanceCrash(after_moves=crash_during_rebalance,
                        victim=rebalance_victim),)
        if crash_during_rebalance is not None else ())
    plan = FaultPlan(seed=seed, transient_io_rate=rate,
                     network_drop_rate=drop_rate, node_crashes=crashes,
                     page_corruptions=corruptions,
                     rebalance_crashes=rebalance_crashes)
    cluster = workload.make_cluster()
    cluster.inject_faults(plan)
    topology = None
    rebalance_proc = None
    if crash_during_rebalance is not None:
        # Elasticity chaos: a node joins, node 0 drains (so every one of
        # its partitions must move), the rebalancer migrates them
        # concurrently with the query, and the armed RebalanceCrash
        # kills one end of an in-flight move.
        topology = TopologyController(cluster, workload.catalog)
        topology.join_node()
        topology.drain_node(0)
        rebalance_proc = cluster.launch(topology.rebalance_job(),
                                        name="rebalance")
    config = EngineConfig(on_error=policy, max_retries=max_retries)
    chaotic = ReDeExecutor(cluster, workload.catalog, config=config,
                           mode="smpe").execute(job)
    if rebalance_proc is not None:
        cluster.run_until(rebalance_proc)

    summary = chaotic.metrics
    print(f"Q5' under chaos (seed={seed}, io-rate={rate}, "
          f"drop-rate={drop_rate}, policy={policy}"
          + (f", crash node {crash_node}@{crash_at}s" if crashes else "")
          + (f", page-corruption {corruption:g}" if corruptions else "")
          + (f", {rebalance_victim} crash at rebalance move "
             f"{crash_during_rebalance}" if rebalance_crashes else "")
          + ")")
    print(f"  fault-free: {len(clean.rows)} rows in "
          f"{clean.metrics.elapsed_seconds * 1e3:.1f} simulated ms")
    print(f"  chaos:      {len(chaotic.rows)} rows in "
          f"{summary.elapsed_seconds * 1e3:.1f} simulated ms")
    print(f"  faults observed: {summary.transient_faults} transient, "
          f"{summary.timeouts} timeouts, {summary.node_crashes} crashes; "
          f"{summary.retries} retries, {summary.reroutes} reroutes, "
          f"{summary.tasks_skipped} units skipped")
    if corruptions:
        print(f"  corruption: {summary.corruptions_detected} corrupt "
              f"probes detected, {summary.quarantines} structures "
              f"quarantined, {summary.corruption_fallbacks} probes "
              "re-served by scan")
    if topology is not None:
        assert topology.converged, "rebalance failed to converge"
        print(f"  rebalance: {topology.moves_committed} moves committed, "
              f"converged at epoch {topology.epoch} "
              f"({len(topology.active_nodes())} active nodes)")
        for event in topology.events:
            detail = f" ({event.detail})" if event.detail else ""
            print(f"    {event.time * 1e3:8.2f}ms epoch {event.epoch:2d} "
                  f"{event.kind} node {event.node}{detail}")
    if canonical_q5_rows_rede(chaotic) == canonical_q5_rows_rede(clean):
        print("  result: identical to the fault-free answer")
    else:
        print("  result: PARTIAL — see the failure report")
    print(chaotic.failure_report.render())
    return 0


def cmd_scrub(scale: float, nodes: int, seed: int, corruption: float,
              sample_every: int) -> int:
    """Corrupt index pages, query through the quarantine fallback, then
    let the scrub worker detect and repair everything."""
    from repro.cluster import FaultPlan, PageCorruption
    from repro.core.scrub import ScrubWorker

    workload = TpchWorkload(scale_factor=scale, seed=1, num_nodes=nodes,
                            block_size=256 * 1024)
    low, high = workload.date_range(0.2)
    job = workload.q5_job(low, high)

    clean = ReDeExecutor(workload.make_cluster(), workload.catalog,
                         mode="smpe").execute(job)

    structures = workload.catalog.access_methods()
    plan = FaultPlan(seed=seed, page_corruptions=tuple(
        PageCorruption(name, corruption) for name in structures))
    cluster = workload.make_cluster()
    cluster.inject_faults(plan)
    corrupted = ReDeExecutor(cluster, workload.catalog,
                             mode="smpe").execute(job)

    print(f"Q5' with page corruption {corruption:g} on "
          f"{len(structures)} structures (seed={seed})")
    print(f"  fault-free: {len(clean.rows)} rows in "
          f"{clean.metrics.elapsed_seconds * 1e3:.1f} simulated ms")
    summary = corrupted.metrics
    print(f"  corrupted:  {len(corrupted.rows)} rows in "
          f"{summary.elapsed_seconds * 1e3:.1f} simulated ms "
          f"({summary.corruptions_detected} corrupt probes, "
          f"{summary.quarantines} quarantines, "
          f"{summary.corruption_fallbacks} scan fallbacks)")
    identical = (canonical_q5_rows_rede(corrupted)
                 == canonical_q5_rows_rede(clean))
    print("  result: " + ("identical to the fault-free answer" if identical
                          else "MISMATCH (bug!)"))

    report = ScrubWorker(workload.catalog, cluster,
                         sample_every=sample_every).run_once()
    print(report.render())

    after = ReDeExecutor(cluster, workload.catalog,
                         mode="smpe").execute(job)
    healed = (canonical_q5_rows_rede(after)
              == canonical_q5_rows_rede(clean)
              and after.metrics.corruptions_detected == 0)
    print("  after repair: " + (
        f"{len(after.rows)} rows, 0 corrupt probes — clean" if healed
        else f"{after.metrics.corruptions_detected} corrupt probes "
             "remain (raise --sample-every coverage)"))
    return 0 if identical else 1


def cmd_plan(scale: float, nodes: int, selectivity: float,
             execute: bool, batch_size: int = 1,
             adaptive: Optional[float] = None) -> int:
    """Print the per-stage planner's decision table for Q5′."""
    from repro.config import EngineConfig
    from repro.engine import PlanningExecutor

    workload = TpchWorkload(scale_factor=scale, seed=1, num_nodes=nodes,
                            block_size=256 * 1024)
    spec = workload.make_cluster(scan_seconds=0.25).spec
    executor = PlanningExecutor(workload.catalog, workload.blockstore,
                                spec,
                                config=EngineConfig(batch_size=batch_size),
                                adaptive_threshold=adaptive)
    low, high = workload.date_range(selectivity)
    logical = workload.q5_chain(low, high).logical_plan()
    planned = executor.plan(logical)
    print(f"Q5' at selectivity {selectivity:g} "
          f"(SF={scale:g}, {nodes} nodes)")
    print(planned.describe())
    if execute:
        result = executor.execute(logical)
        print(f"executed {result.executed} plan: {len(result.rows)} rows "
              f"in {result.elapsed_seconds * 1e3:.1f} simulated ms "
              f"({result.record_accesses} record accesses)")
        if result.adaptive is not None:
            switches = result.adaptive.switches
            if switches:
                print(f"adaptive re-optimization "
                      f"(threshold {adaptive:g}x):")
                for event in switches:
                    print(f"  {event.describe()}")
            else:
                print(f"adaptive re-optimization armed "
                      f"(threshold {adaptive:g}x): no stage exceeded "
                      f"its estimate — static plan ran unchanged")
    return 0


def cmd_serve(rate: float, duration: float, nodes: int, tenants: int,
              slots: int, queue_limit: int, deadline: Optional[float],
              seed: int, maintenance: bool, batch_size: int = 1,
              result_cache_mb: float = 0.0) -> int:
    """Open-loop Poisson traffic through the query gateway."""
    import random

    from repro.cluster import Cluster
    from repro.config import EngineConfig, laptop_cluster_spec
    from repro.core import (
        AccessMethodDefinition,
        ChainQuery,
        MappingInterpreter,
        Record,
        StructureCatalog,
    )
    from repro.core.maintenance import MaintenanceWorker
    from repro.service import QueryGateway, TenantSpec, background_build
    from repro.service.result_cache import SemanticResultCache
    from repro.storage import DistributedFileSystem

    interp = MappingInterpreter()
    dfs = DistributedFileSystem(num_nodes=nodes)
    catalog = StructureCatalog(dfs)
    events = [Record({"event_id": i, "severity": i % 100})
              for i in range(5000)]
    catalog.register_file("events", events, lambda r: r["event_id"])
    catalog.register_access_method(AccessMethodDefinition(
        name="idx_severity", base_file="events", interpreter=interp,
        key_field="severity", scope="global"))
    catalog.ensure_built("idx_severity")
    # A second, lazy structure gives the maintenance lane real work.
    catalog.register_access_method(AccessMethodDefinition(
        name="idx_event", base_file="events", interpreter=interp,
        key_field="event_id", scope="global"))

    cluster = Cluster(laptop_cluster_spec(nodes))
    cache = None
    if result_cache_mb > 0:
        cache = SemanticResultCache(
            budget_bytes=int(result_cache_mb * (1 << 20)))
    gateway = QueryGateway(cluster, catalog,
                           EngineConfig(batch_size=batch_size),
                           max_concurrent=slots,
                           global_queue_limit=queue_limit,
                           result_cache=cache)
    sim = cluster.sim
    tickets = []

    def make_job(tenant: str, k: int):
        low = (k * 7) % 90
        return (ChainQuery(f"{tenant}-q{k}", interpreter=interp)
                .from_index_range("idx_severity", low, low + 4,
                                  base="events")
                .build())

    def driver(tenant: str, stream: random.Random):
        clock, k = 0.0, 0
        while True:
            gap = stream.expovariate(rate)
            if clock + gap >= duration:
                return
            clock += gap
            yield sim.timeout(gap)
            tickets.append(gateway.submit(
                tenant, make_job(tenant, k), deadline=deadline))
            k += 1

    drivers = []
    for i in range(tenants):
        name = f"tenant{i}"
        gateway.register(TenantSpec(name))
        drivers.append(cluster.launch(
            driver(name, random.Random(seed + i)), name=f"drive:{name}"))
    if maintenance:
        gateway.register(TenantSpec("maintenance", weight=0.5))
        worker = MaintenanceWorker(catalog, cluster)
        tickets.append(gateway.submit(
            "maintenance", work=background_build(worker, "idx_event"),
            lane="background"))

    cluster.run_until(sim.all_of(drivers))
    pendings = [t.done for t in tickets if not t.finished]
    if pendings:
        cluster.run_until(sim.all_of(pendings))
    gateway.close()

    table = SweepTable(
        title=f"Serving {rate:g} req/s/tenant for {duration:g}s on "
              f"{nodes} nodes ({slots} slots, queue limit {queue_limit})",
        columns=["tenant", "submitted", "completed", "dropped", "p50",
                 "p99", "queue p99", "goodput/s"])
    for name, m in sorted(gateway.metrics.items()):
        table.add_row(name, m.submitted, m.completed, m.dropped,
                      format_seconds(m.latency_p50()),
                      format_seconds(m.latency_p99()),
                      format_seconds(m.queue_wait_p99()),
                      round(m.goodput(), 1))
    actions = {}
    for decision in gateway.decisions:
        actions[decision.action] = actions.get(decision.action, 0) + 1
    table.add_note("decisions: " + ", ".join(
        f"{k}={v}" for k, v in sorted(actions.items())))
    print(table.render())
    if cache is not None:
        stats = cache.stats()
        print(f"result cache ({result_cache_mb:g} MB budget): "
              f"{stats['hits']} hits, {stats['subsumed_hits']} subsumed, "
              f"{stats['misses']} misses, {stats['insertions']} inserted, "
              f"{stats['evictions']} evicted, "
              f"{stats['invalidations']} invalidated, "
              f"{stats['used_bytes']} bytes used")
    if maintenance:
        print(f"idx_event state after serving: "
              f"{catalog.state('idx_event').name}")
    return 0


def cmd_ingest(duration: float, nodes: int, sensors: int, batch_size: int,
               batch_rate: float, query_rate: float, policy: str,
               seed: int) -> int:
    """Streaming sensor ingest with concurrent interactive queries."""
    import random

    from repro.cluster import Cluster
    from repro.config import laptop_cluster_spec
    from repro.core import (
        AccessMethodDefinition,
        ChainQuery,
        StructureCatalog,
    )
    from repro.datagen import (
        DEVICES_FILE,
        READINGS_FILE,
        SensorInterpreter,
        TrafficSensorGenerator,
    )
    from repro.ingest import CompactionPolicy, Compactor, IngestCoordinator
    from repro.service import (QueryGateway, TenantSpec,
                               background_compaction, background_ingest)
    from repro.storage import DistributedFileSystem

    interp = SensorInterpreter()
    generator = TrafficSensorGenerator(num_sensors=sensors, seed=seed)
    dfs = DistributedFileSystem(num_nodes=nodes)
    catalog = StructureCatalog(dfs)
    catalog.register_file(
        READINGS_FILE, generator.initial_readings(8 * sensors),
        lambda r: interp.field(r, "device_id"),
        key_fn=lambda r: interp.field(r, "reading_id"))
    catalog.register_file(
        DEVICES_FILE, generator.initial_devices(),
        lambda r: interp.field(r, "device_id"),
        key_fn=lambda r: interp.field(r, "device_id"))
    catalog.register_access_method(AccessMethodDefinition(
        name="idx_readings_by_device", base_file=READINGS_FILE,
        interpreter=interp, key_field="device_id", scope="global"))
    catalog.ensure_built("idx_readings_by_device")

    cluster = Cluster(laptop_cluster_spec(nodes))
    gateway = QueryGateway(cluster, catalog)
    coordinator = IngestCoordinator(catalog, cluster)
    compactor = Compactor(catalog, cluster,
                          policy=getattr(CompactionPolicy, policy)())
    gateway.register(TenantSpec("analyst"))
    gateway.register(TenantSpec("sensors", weight=0.5))
    sim = cluster.sim
    tickets = []

    def ingest_driver(stream: random.Random):
        clock, k = 0.0, 0
        while True:
            gap = stream.expovariate(batch_rate)
            if clock + gap >= duration:
                return
            clock += gap
            yield sim.timeout(gap)
            micro = (generator.status_batch(k) if k % 4 == 3
                     else generator.readings_batch(k, batch_size))
            batch = coordinator.stage(micro)
            tickets.append(gateway.submit(
                "sensors", work=background_ingest(coordinator, batch),
                lane="background"))
            for name, tier in compactor.due():
                tickets.append(gateway.submit(
                    "sensors",
                    work=background_compaction(compactor, name, tier),
                    lane="background"))
            k += 1

    def query_driver(stream: random.Random):
        clock, k = 0.0, 0
        while True:
            gap = stream.expovariate(query_rate)
            if clock + gap >= duration:
                return
            clock += gap
            yield sim.timeout(gap)
            device = f"dev-{stream.randrange(sensors):04d}"
            job = (ChainQuery(f"readings-q{k}", interpreter=interp)
                   .from_index_lookup("idx_readings_by_device", [device],
                                      base=READINGS_FILE)
                   .build())
            tickets.append(gateway.submit("analyst", job))
            k += 1

    drivers = [
        cluster.launch(ingest_driver(random.Random(seed)), name="ingest"),
        cluster.launch(query_driver(random.Random(seed + 1)), name="query"),
    ]
    cluster.run_until(sim.all_of(drivers))
    pendings = [t.done for t in tickets if not t.finished]
    if pendings:
        cluster.run_until(sim.all_of(pendings))
    # Anything still staged (its flush was shed under load) commits now.
    coordinator.flush_pending()
    gateway.close()

    table = SweepTable(
        title=f"Streaming {batch_rate:g} batches/s + {query_rate:g} q/s "
              f"for {duration:g}s on {nodes} nodes (policy {policy})",
        columns=["tenant", "submitted", "completed", "dropped", "p50",
                 "p99", "goodput/s"])
    for name, m in sorted(gateway.metrics.items()):
        table.add_row(name, m.submitted, m.completed, m.dropped,
                      format_seconds(m.latency_p50()),
                      format_seconds(m.latency_p99()),
                      round(m.goodput(), 1))
    wm = coordinator.watermark()
    table.add_note(
        f"watermark: committed_through={wm.committed_through} "
        f"({wm.committed_batches} batches, {wm.pending_batches} pending, "
        f"{wm.delta_runs} delta runs, {wm.late_records} late records)")
    table.add_note(
        f"compactions: minor={compactor.minor_compactions} "
        f"major={compactor.major_compactions}; "
        f"delta depth now: readings="
        f"{catalog.delta_depth(READINGS_FILE)} devices="
        f"{catalog.delta_depth(DEVICES_FILE)}")
    served = [t.result.metrics.freshness_watermark for t in tickets
              if t.tenant == "analyst" and t.result is not None]
    stamped = [w for w in served if w is not None]
    if stamped:
        table.add_note(
            f"query freshness: {len(stamped)}/{len(served)} stamped, "
            f"newest watermark seen {max(stamped):g}")
    table.add_note(f"decisions logged: {len(gateway.decisions)} "
                   f"(dropped {gateway.decisions_dropped})")
    print(table.render())
    return 0


def cmd_inventory() -> int:
    claims = ClaimsGenerator(num_claims=500, seed=1).generate()
    lake = ClaimsLake(claims, num_nodes=4)
    print(f"{'name':24s} {'kind':14s} {'base':10s} state")
    print("-" * 60)
    for row in lake.catalog.inventory():
        print(f"{row['name']:24s} {row['kind']:14s} {row['base']:10s} "
              f"{row['state']}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _run_demo_inline()
    if args.command == "fig7":
        return cmd_fig7(args.scale, args.nodes, args.cache_mb,
                        args.cache_policy, args.batch_size)
    if args.command == "fig9":
        return cmd_fig9(args.claims)
    if args.command == "inventory":
        return cmd_inventory()
    if args.command == "plan":
        return cmd_plan(args.scale, args.nodes, args.selectivity,
                        args.execute, args.batch_size, args.adaptive)
    if args.command == "chaos":
        return cmd_chaos(args.scale, args.nodes, args.seed, args.rate,
                         args.drop_rate, args.policy, args.max_retries,
                         args.crash_node, args.crash_at, args.corruption,
                         args.crash_during_rebalance, args.rebalance_victim)
    if args.command == "scrub":
        return cmd_scrub(args.scale, args.nodes, args.seed,
                         args.corruption, args.sample_every)
    if args.command == "serve":
        return cmd_serve(args.rate, args.duration, args.nodes,
                         args.tenants, args.slots, args.queue_limit,
                         args.deadline, args.seed, args.maintenance,
                         args.batch_size, args.result_cache_mb)
    if args.command == "ingest":
        return cmd_ingest(args.duration, args.nodes, args.sensors,
                          args.batch_size, args.batch_rate,
                          args.query_rate, args.policy, args.seed)
    return 2  # pragma: no cover - argparse enforces the choices
