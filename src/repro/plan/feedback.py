"""Runtime feedback and adaptive re-optimization.

The planner's estimates are guesses; the engines know the truth.  This
module closes the loop:

* :func:`stage_spans` maps each :class:`~repro.plan.physical.
  PhysicalStage` onto the range of function indices its lowering
  produced in the job, so per-function observations can be attributed
  back to logical nodes.
* :class:`RuntimeFeedback` is the narrow interface the access funnel
  reports into (``observe(stage, rows)``) — the engines never see the
  planner.
* :class:`AdaptiveController` implements mid-query re-planning: when a
  stage's *observed* output cardinality exceeds its estimate by a
  configurable factor, the remaining join stages are re-priced with the
  corrected row count and any stage whose scan arm is now cheaper has
  its trailing :class:`~repro.core.functions.FileLookupDereferencer`
  swapped for a :class:`~repro.plan.scanstage.ScanLookupDereferencer`
  *in place* — the engines resolve ``job.function_at(stage)`` at every
  dispatch, so records still in flight simply start hitting the hash
  table.  Mixed serving is correct by construction: the scan table
  answers the same logical keys, physical ``(partition, slot)`` targets
  and delta tags the index path resolves, and the old dereferencer's
  filter is carried over.

With no controller attached (``EngineConfig.feedback is None``, the
default) nothing in this module runs and every engine is bit-identical
to pre-adaptive builds.  A controller with ``threshold=None`` observes
but never triggers — the instrumented-but-inert mode the equivalence
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.functions import FileLookupDereferencer
from repro.core.interpreters import (
    AndFilter,
    ContextMatchFilter,
    FieldEqualsFilter,
    FieldRangeFilter,
    Filter,
)
from repro.plan.logical import JoinNode, LogicalPlan, SourceNode
from repro.plan.lowering import _delta_source, _scan_join_keys
from repro.plan.physical import ACCESS_SCAN, PhysicalPlan
from repro.plan.scanstage import ScanLookupDereferencer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.catalog import StructureCatalog
    from repro.core.job import Job
    from repro.plan.planner import StageEstimate, StagePlanner

__all__ = [
    "StageSpan",
    "SwitchEvent",
    "RuntimeFeedback",
    "AdaptiveController",
    "stage_spans",
    "filter_signature",
    "logical_signature",
]


@dataclass(frozen=True)
class StageSpan:
    """One physical stage's footprint in the lowered function list."""

    index: int  #: position in ``physical.stages``
    node: Any  #: the SourceNode/JoinNode
    access_path: str
    start: int  #: first function index of this stage
    end: int  #: function index of the trailing dereferencer
    estimate: Optional["StageEstimate"] = None


def _span_width(node: Any, access_path: str) -> int:
    """How many job functions a stage lowers to (see plan.lowering)."""
    if isinstance(node, SourceNode):
        # probe deref (+ IndexEntryReferencer + base fetch when based);
        # the scan arm swaps only the base fetch, keeping the width.
        return 1 if node.base is None else 3
    if access_path == ACCESS_SCAN:
        return 2  # KeyReferencer + ScanLookupDereferencer
    if node.via_index is not None:
        return 4  # KeyRef + IndexLookup + IndexEntry + FileLookup
    return 2  # KeyReferencer + FileLookupDereferencer


def stage_spans(physical: PhysicalPlan,
                estimates: Optional[list] = None) -> list[StageSpan]:
    """Map physical stages to function-index ranges, mirroring lowering.

    ``estimates`` (when given) must align 1:1 with the stages — the
    planner's ``stage_estimates`` list does.
    """
    spans: list[StageSpan] = []
    cursor = 0
    for index, stage in enumerate(physical.stages):
        width = _span_width(stage.node, stage.access_path)
        estimate = estimates[index] if estimates else None
        spans.append(StageSpan(
            index=index, node=stage.node, access_path=stage.access_path,
            start=cursor, end=cursor + width - 1, estimate=estimate))
        cursor += width
    return spans


@dataclass(frozen=True)
class SwitchEvent:
    """One mid-query access-path switch, for reports and tests."""

    stage_index: int
    target: str
    function_index: int
    observed_rows_in: float
    estimated_rows_in: float
    index_seconds: float
    scan_seconds: float

    def describe(self) -> str:
        return (f"stage[{self.stage_index}] join:{self.target} "
                f"index->scan at fn {self.function_index} "
                f"(rows_in {self.estimated_rows_in:.0f} est -> "
                f"{self.observed_rows_in:.0f} seen; "
                f"{self.index_seconds * 1e3:.1f}ms index vs "
                f"{self.scan_seconds * 1e3:.1f}ms scan)")


class RuntimeFeedback:
    """Minimal sink for observed per-stage output cardinalities.

    The access funnel calls :meth:`observe` with the *function index*
    the engines dispatch on and the post-filter record count the fetch
    produced.  The base class only accumulates; subclasses react.
    """

    def __init__(self) -> None:
        self.observed: dict[int, int] = {}

    def observe(self, stage: int, rows: int) -> None:
        self.observed[stage] = self.observed.get(stage, 0) + rows


class AdaptiveController(RuntimeFeedback):
    """Re-plan the remaining stages when an estimate proves badly wrong.

    Attached to a job via ``EngineConfig.feedback``.  A stage span
    triggers when the rows observed at its trailing dereferencer reach
    ``threshold`` times the planned ``rows_out``: the downstream join
    stages are re-priced with the corrected cardinality (chained through
    :meth:`StagePlanner._join_estimate`) and every index-backed,
    scan-backable stage whose scan arm now wins is switched in place.
    Because the observed count at trigger time is only a lower bound on
    the stage's true output, each span re-arms at double the count that
    last triggered it — at most log2(rows) re-plans, each one pure
    estimate arithmetic.  ``threshold=None`` disables triggering
    entirely.
    """

    def __init__(self, planner: "StagePlanner", physical: PhysicalPlan,
                 job: "Job", estimates: list,
                 threshold: Optional[float] = 4.0,
                 table_cache: Optional[Any] = None) -> None:
        super().__init__()
        self.planner = planner
        self.job = job
        self.threshold = threshold
        self.catalog = planner.catalog
        #: optional semantic-cache handle so switched-in scan stages can
        #: adopt (and publish) cached hash tables like lowered ones do
        self.table_cache = table_cache
        self.spans = stage_spans(physical, estimates)
        self._by_end = {span.end: span for span in self.spans}
        self._triggered: set[int] = set()
        self._next_trigger: dict[int, float] = {}
        self.switches: list[SwitchEvent] = []

    def observe(self, stage: int, rows: int) -> None:
        super().observe(stage, rows)
        if self.threshold is None:
            return
        span = self._by_end.get(stage)
        if span is None:
            return
        bar = self._next_trigger.get(span.index)
        if bar is None:
            estimate = span.estimate
            expected = max(1.0, estimate.rows_out) if estimate else 1.0
            bar = self.threshold * expected
        seen = self.observed[stage]
        if seen < bar:
            return
        self._triggered.add(span.index)
        self._next_trigger[span.index] = 2.0 * seen
        self._replan_downstream(span, float(seen))

    # -- the re-plan -----------------------------------------------------

    def _replan_downstream(self, origin: StageSpan,
                           observed_rows: float) -> None:
        """Re-price every stage after ``origin`` with corrected rows_in.

        ``observed_rows`` is a *lower bound* on the origin stage's true
        output (it is still producing), which keeps the correction
        conservative: a switch only happens once the evidence already
        justifies it.
        """
        rows = observed_rows
        for span in self.spans[origin.index + 1:]:
            node = span.node
            if not isinstance(node, JoinNode):
                continue
            estimate = self.planner._join_estimate(node, rows)
            if self._switchable(span, node, estimate):
                self._switch(span, node, rows, estimate)
            rows = estimate.rows_out

    def _switchable(self, span: StageSpan, node: JoinNode,
                    estimate: "StageEstimate") -> bool:
        if estimate.scan_seconds is None:
            return False
        if estimate.scan_seconds >= estimate.index_seconds:
            return False
        if node.broadcast or not self.planner._scan_backable_join(node):
            return False
        # Only the trailing heap fetch is swapped; anything else (already
        # scan-backed, already switched) is left alone.
        return isinstance(self.job.functions[span.end],
                          FileLookupDereferencer)

    def _switch(self, span: StageSpan, node: JoinNode, rows: float,
                estimate: "StageEstimate") -> None:
        old = self.job.functions[span.end]
        assert isinstance(old, FileLookupDereferencer)
        replacement = ScanLookupDereferencer(
            node.target, _scan_join_keys(self.catalog, node),
            filter=old.filter,
            delta_source=_delta_source(self.catalog, node.target),
            key_id=(node.target, node.via_index))
        if self.table_cache is not None:
            replacement.cache = self.table_cache
        self.job.functions[span.end] = replacement
        planned = span.estimate
        self.switches.append(SwitchEvent(
            stage_index=span.index, target=node.target,
            function_index=span.end, observed_rows_in=rows,
            estimated_rows_in=planned.rows_in if planned else 0.0,
            index_seconds=estimate.index_seconds,
            scan_seconds=estimate.scan_seconds or 0.0))

    def summary(self) -> dict[str, Any]:
        return {
            "observed": dict(self.observed),
            "triggered_stages": sorted(self._triggered),
            "switches": [event.describe() for event in self.switches],
        }


# --------------------------------------------------------------------------
# Canonical signatures, shared by the plan memo (engine.planned) and the
# semantic result cache (service.result_cache).
# --------------------------------------------------------------------------


def filter_signature(flt: Optional[Filter]) -> Any:
    """A hashable, value-based identity for a filter tree.

    Opaque predicates hash by object identity — two jobs share a cache
    entry only when they share the very same predicate instance, which
    is the only safe equality for arbitrary callables.
    """
    if flt is None:
        return None
    if isinstance(flt, AndFilter):
        return ("and",) + tuple(filter_signature(f) for f in flt.filters)
    if isinstance(flt, FieldEqualsFilter):
        return ("eq", flt.field, flt.value)
    if isinstance(flt, FieldRangeFilter):
        return ("range", flt.field, flt.low, flt.high)
    if isinstance(flt, ContextMatchFilter):
        return ("ctx", flt.field, flt.context_key)
    return ("opaque", id(flt))


def logical_signature(logical: LogicalPlan) -> tuple:
    """A hashable, value-based identity for a logical plan.

    Two plans with the same signature denote the same query shape over
    the same structures, so planner output for one is valid for the
    other — the memo key :class:`~repro.engine.planned.
    PlanningExecutor` pairs with its lake-state token.  Node estimates
    are deliberately excluded (planning mutates them).
    """
    parts: list[Any] = []
    for node in logical.nodes:
        if isinstance(node, SourceNode):
            parts.append((
                "source", node.kind, node.structure, node.base,
                node.low, node.high, tuple(node.keys or ()),
                tuple(filter_signature(f) for f in node.filters),
                tuple(node.carried_context or ())))
        else:
            assert isinstance(node, JoinNode)
            parts.append((
                "join", node.target, node.key, node.context_key,
                node.via_index, node.broadcast,
                tuple(filter_signature(f) for f in node.filters),
                tuple(sorted((node.carry or {}).items())),
                tuple(node.carried_context or ())))
    return tuple(parts)
