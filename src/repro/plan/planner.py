"""The per-stage planner: cost each chain hop, pick its access path.

This generalizes the whole-query binary choice of
:mod:`repro.engine.hybrid` (whose :class:`CostModel` now delegates to the
primitives here).  For every logical node the planner consults structure
statistics — B-tree cardinalities for the initial probe, row/byte counts
and distinct-key counts from the catalog — and prices two options:

* **index**: pay a random read per probe (page-granular, cache-aware
  when buffer pools are provisioned);
* **scan**: pay one parallel sequential pass over the target to build a
  replicated hash table, then probe it in memory (the
  :class:`~repro.plan.scanstage.ScanLookupDereferencer` lowering).

The emitted :class:`PlannedQuery` carries the mixed plan, both degenerate
plans (all-index job, all-scan operator tree), and every estimate, so
executors and benchmarks can run any of the three.  Planning is
deterministic: identical catalogs and logical plans produce identical
physical plans and estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

from repro.baselines.scan_engine import HashJoinNode, PlanNode, ScanNode
from repro.cluster.cluster import ClusterSpec
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.functions import Dereferencer
from repro.core.interpreters import (
    ContextMatchFilter,
    FieldEqualsFilter,
    FieldRangeFilter,
    Filter,
)
from repro.core.pointers import Pointer, PointerKind, PointerRange
from repro.errors import ExecutionError, JobDefinitionError
from repro.plan.logical import JoinNode, LogicalPlan, SourceNode
from repro.plan.lowering import compile_logical, to_scan_plan
from repro.plan.physical import ACCESS_INDEX, ACCESS_SCAN, PhysicalPlan
from repro.storage.files import BtreeFile, PartitionedFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.catalog import StructureCatalog
    from repro.core.job import Job
    from repro.storage.blockstore import BlockStore

__all__ = [
    "StageEstimate",
    "PlannedQuery",
    "StagePlanner",
    "initial_cardinality",
    "estimate_indexed_job_seconds",
    "estimate_scan_plan_seconds",
    "expected_cache_hit_rate",
    "working_set_bytes",
]

Target = Union[Pointer, PointerRange]


# --------------------------------------------------------------------------
# Whole-job cost primitives (lifted from engine.hybrid.CostModel, which now
# delegates here).  At cache_bytes == 0 these are arithmetic-identical to
# the pre-plan formulas.
# --------------------------------------------------------------------------


def initial_cardinality(catalog: "StructureCatalog",
                        inputs: Sequence[Target],
                        statistics: str = "exact",
                        histograms: Optional[dict[str, Any]] = None,
                        histogram_buckets: int = 32) -> float:
    """Cardinality of a job's initial probes.

    First-class structures make statistics trivial: in ``"exact"`` mode
    the B-tree *is* the statistic; in ``"histogram"`` mode a compact
    equi-depth summary answers instead (cached in ``histograms``).

    Under streaming ingest the built tree alone is freshness-blind:
    unmerged delta runs hold committed entries the tree has not absorbed
    (and tombstones that kill entries it still holds), so both modes
    fold the registry's per-partition delta matches into the count —
    appends add, tombstoned/superseded entries subtract.  With no runs
    registered the fold is skipped entirely and the estimate is
    bit-identical to a static lake's.
    """
    if statistics not in ("exact", "histogram"):
        raise ExecutionError(
            f"statistics must be exact|histogram, got {statistics!r}")
    total = 0.0
    for target in inputs:
        file = catalog.resolve(target.file)
        if not isinstance(file, BtreeFile):
            total += 1
            continue
        runs = catalog.delta_runs(target.file)
        if statistics == "histogram":
            histogram = _histogram_for(catalog, target.file, histograms,
                                       histogram_buckets)
            if isinstance(target, PointerRange):
                total += histogram.estimate_range(target.low, target.high)
            else:
                total += histogram.estimate_equal(target.key)
            if runs:
                for pid in range(file.num_partitions):
                    total += _delta_adjustment(
                        runs, target, pid, file.range_lookup(target, pid)
                        if isinstance(target, PointerRange)
                        else file.lookup_in_partition(pid, target))
            continue
        if isinstance(target, PointerRange):
            for pid in range(file.num_partitions):
                matches = file.range_lookup(target, pid)
                total += len(matches)
                if runs:
                    total += _delta_adjustment(runs, target, pid, matches)
        elif isinstance(target, Pointer):
            pid = file.partition_of_key(
                target.partition_key if target.partition_key is not None
                else target.key)
            matches = file.lookup_in_partition(pid, target)
            total += len(matches)
            if runs:
                total += _delta_adjustment(runs, target, pid, matches)
    # Exact mode counts whole records; histogram mode interpolates.
    return int(max(0.0, total)) if statistics == "exact" else max(0.0, total)


def _delta_adjustment(runs: list, target: Target, pid: int,
                      built_matches: Sequence[Any]) -> int:
    """Net cardinality correction from one partition's unmerged runs.

    Mirrors the engine-side merge (``access._merge_deltas``): live delta
    additions matching the probe count positive, built-tree entries
    killed by upsert tombstones count negative.  Pure bookkeeping over
    in-memory runs — no charged IO.
    """
    # Probe helpers are plain data-structure accessors (layering rule 11:
    # plan, like engine, may use ingest.delta's probe helpers for
    # freshness-aware statistics); imported lazily to keep the static
    # planning path import-free of the ingest package.
    from repro.ingest.delta import probe_delta_runs, tombstone_set
    from repro.storage.files import (INDEX_KEY_FIELD, TARGET_KEY_FIELD,
                                     TARGET_KIND_FIELD,
                                     TARGET_PARTITION_FIELD)

    killed = 0
    tombstones = tombstone_set(runs, pid)
    if tombstones:
        for record in built_matches:
            data = record.data
            if (data.get(TARGET_KIND_FIELD) == PointerKind.PHYSICAL.value
                    and (data.get(INDEX_KEY_FIELD),
                         data.get(TARGET_PARTITION_FIELD),
                         data.get(TARGET_KEY_FIELD)) in tombstones):
                killed += 1
    additions, __ = probe_delta_runs(runs, pid, target)
    return len(additions) - killed


def _histogram_for(catalog: "StructureCatalog", name: str,
                   histograms: Optional[dict[str, Any]],
                   histogram_buckets: int):
    from repro.storage.stats import build_index_histogram

    if histograms is None:
        histograms = {}
    if name not in histograms:
        histograms[name] = build_index_histogram(
            catalog.resolve(name), num_buckets=histogram_buckets)
    return histograms[name]


def expected_cache_hit_rate(spec: ClusterSpec,
                            working_bytes: float) -> float:
    """Steady-state hit rate of the cluster's pools over a working set."""
    total_cache = spec.node.cache_bytes * spec.num_nodes
    if total_cache <= 0 or working_bytes <= 0:
        return 0.0
    return min(1.0, total_cache / working_bytes)


def working_set_bytes(catalog: "StructureCatalog", job: "Job") -> int:
    """Bytes of every distinct structure a job dereferences."""
    return sum(catalog.resolve(name).total_bytes
               for name in dict.fromkeys(job.structures()))


def estimate_indexed_job_seconds(
        spec: ClusterSpec, catalog: "StructureCatalog", job: "Job",
        per_match_access_factor: Optional[float] = None,
        statistics: str = "exact",
        histograms: Optional[dict[str, Any]] = None,
        histogram_buckets: int = 32,
        cache_hit_time: float = DEFAULT_ENGINE_CONFIG.cache_hit_time
) -> float:
    """floor (chain latency) + throughput term (accesses over IOPS).

    With buffer pools provisioned (``spec.node.cache_bytes > 0``) the
    throughput term discounts repeated probes by the expected hit rate:
    hits pay RAM service time instead of a cold random read.
    """
    cardinality = initial_cardinality(catalog, job.inputs, statistics,
                                      histograms, histogram_buckets)
    num_derefs = sum(1 for f in job.functions
                     if isinstance(f, Dereferencer))
    factor = (per_match_access_factor
              if per_match_access_factor is not None
              else float(num_derefs))
    accesses = max(1.0, cardinality * factor)
    disk = spec.node.disk
    total_iops = disk.random_iops * spec.num_nodes
    latency_floor = num_derefs * disk.random_service_time
    if spec.node.cache_bytes <= 0:
        return latency_floor + accesses / total_iops
    hit_rate = expected_cache_hit_rate(spec,
                                       working_set_bytes(catalog, job))
    misses = accesses * (1.0 - hit_rate)
    hits = accesses - misses
    return (latency_floor + misses / total_iops
            + hits * cache_hit_time / spec.num_nodes)


def estimate_scan_plan_seconds(spec: ClusterSpec, store: "BlockStore",
                               plan: PlanNode) -> float:
    """Scan phases at array bandwidth plus per-tuple join CPU."""
    tables = plan_tables(plan)
    total_bytes = sum(store.file_bytes(t) for t in tables)
    total_rows = sum(store.num_records(t) for t in tables)
    node = spec.node
    scan_seconds = (total_bytes / spec.num_nodes
                    / node.disk.seq_bandwidth)
    num_joins = plan_joins(plan)
    # Every row flows through roughly each join's build-or-probe once.
    cpu_seconds = (total_rows * (1 + num_joins) * node.tuple_cpu_time
                   / (spec.num_nodes * node.cores))
    return scan_seconds + cpu_seconds


def plan_tables(plan: PlanNode) -> list[str]:
    if isinstance(plan, ScanNode):
        return [plan.table]
    if isinstance(plan, HashJoinNode):
        return plan_tables(plan.build) + plan_tables(plan.probe)
    raise ExecutionError(f"unknown plan node {plan!r}")


def plan_joins(plan: PlanNode) -> int:
    if isinstance(plan, ScanNode):
        return 0
    if isinstance(plan, HashJoinNode):
        return 1 + plan_joins(plan.build) + plan_joins(plan.probe)
    raise ExecutionError(f"unknown plan node {plan!r}")


# --------------------------------------------------------------------------
# Per-stage planning
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StageEstimate:
    """Both access-path prices for one logical node."""

    label: str
    access_path: str  # the chosen one
    index_seconds: float
    scan_seconds: Optional[float]  # None = scan-backing unavailable
    rows_in: float
    rows_out: float


@dataclass
class PlannedQuery:
    """Everything the planner decided about one query."""

    logical: LogicalPlan
    mixed: PhysicalPlan
    all_index: PhysicalPlan
    scan_plan: Optional[PlanNode]
    stage_estimates: list[StageEstimate]
    #: per-stage sum for the mixed plan
    mixed_estimate: float
    #: whole-job estimates, same formulas the old hybrid used
    index_estimate: float
    scan_estimate: Optional[float]
    chosen: str  # "mixed" | "index" | "scan"
    initial_cardinality: float

    @property
    def chosen_estimate(self) -> float:
        if self.chosen == "mixed":
            return self.mixed_estimate
        if self.chosen == "scan":
            assert self.scan_estimate is not None
            return self.scan_estimate
        return self.index_estimate

    def describe(self) -> str:
        scan_est = ("n/a" if self.scan_estimate is None
                    else f"{self.scan_estimate * 1e3:.1f}ms")
        lines = [
            f"PlannedQuery {self.logical.name!r}: chosen={self.chosen}  "
            f"(mixed {self.mixed_estimate * 1e3:.1f}ms, "
            f"index {self.index_estimate * 1e3:.1f}ms, "
            f"scan {scan_est}; initial cardinality "
            f"{self.initial_cardinality:.0f})",
            f"{'stage':<28s} {'path':<6s} {'index':>10s} {'scan':>10s} "
            f"{'rows out':>9s}",
        ]
        for est in self.stage_estimates:
            scan_col = ("-" if est.scan_seconds is None
                        else f"{est.scan_seconds * 1e3:.2f}ms")
            lines.append(
                f"{est.label:<28s} {est.access_path:<6s} "
                f"{est.index_seconds * 1e3:>8.2f}ms {scan_col:>10s} "
                f"{est.rows_out:>9.0f}")
        return "\n".join(lines)


class StagePlanner:
    """Cost every stage of a logical plan and emit the mixed plan.

    The margin keeps the planner honest: the mixed plan is chosen only
    when its per-stage estimate undercuts the *best degenerate* estimate
    by at least ``1 - margin`` — otherwise the planner falls back to
    exactly the whole-query choice the old hybrid made, so its envelope
    can never regress below ``min(ReDe, scan)``.
    """

    def __init__(self, catalog: "StructureCatalog", store: "BlockStore",
                 cluster_spec: ClusterSpec,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 statistics: str = "exact",
                 histogram_buckets: int = 32,
                 margin: float = 0.9,
                 topology: Optional[Any] = None) -> None:
        self.catalog = catalog
        self.store = store
        self.spec = cluster_spec
        self.config = config
        self.statistics = statistics
        self.histogram_buckets = histogram_buckets
        self.margin = margin
        #: optional TopologyController for placement-aware pricing: while
        #: a rebalance is migrating partitions, random-IO capacity is
        #: priced at the controller's effective node count (one node's
        #: worth of spindles is busy copying).  None = static pricing.
        self.topology = topology
        self._histograms: dict[str, Any] = {}
        self._distinct_cache: dict[tuple, int] = {}
        self._selectivity_cache: dict[tuple, float] = {}
        self._stats_token: Optional[tuple] = None

    def note_lake_state(self, token: tuple) -> None:
        """Invalidate cached statistics when the lake changed.

        ``token`` is any hashable fingerprint of the lake's data-plane
        state (catalog version, delta runs, placement epoch).  While the
        token is unchanged the expensive full-scan statistics —
        histograms, distinct counts, filter selectivities — are reused
        across plans; a new token drops them all.
        """
        if token != self._stats_token:
            self._histograms.clear()
            self._distinct_cache.clear()
            self._selectivity_cache.clear()
            self._stats_token = token

    # -- statistics ------------------------------------------------------

    def _file(self, name: str):
        return self.catalog.resolve(name)

    def _rows(self, name: str) -> int:
        return len(self._file(name))

    def _bytes(self, name: str) -> int:
        return self._file(name).total_bytes

    def _distinct_loader_keys(self, table: str) -> int:
        cache_key = (table, "__loader__")
        if cache_key not in self._distinct_cache:
            key_fn = self.catalog.dfs.loader_info(table).key_fn
            file = self._file(table)
            self._distinct_cache[cache_key] = len(
                {key_fn(record) for record in file.scan()})
        return self._distinct_cache[cache_key]

    def _distinct_index_keys(self, index_name: str) -> int:
        cache_key = (index_name, "__index__")
        if cache_key not in self._distinct_cache:
            definition = self.catalog.definition(index_name)
            base = self._file(definition.base_file)
            keys = set()
            for record in base.scan():
                keys.update(definition.extract_keys(record))
            self._distinct_cache[cache_key] = len(keys)
        return self._distinct_cache[cache_key]

    def _distinct_field(self, table: str, flt: Filter,
                        fieldname: str) -> int:
        cache_key = (table, "__field__", fieldname)
        if cache_key not in self._distinct_cache:
            file = self._file(table)
            interpreter = getattr(flt, "interpreter", None)
            values = set()
            for record in file.scan():
                if interpreter is None:
                    break
                values.add(interpreter.field(record, fieldname))
            self._distinct_cache[cache_key] = max(1, len(values))
        return self._distinct_cache[cache_key]

    def _filter_selectivity(self, table: str,
                            filters: Sequence[Filter]) -> float:
        """Combined selectivity of a node's filters over its target.

        Field equality/range filters are answered exactly by one cached
        pass over the target; context matches fall back to the classic
        ``1/distinct`` heuristic; opaque predicates are assumed to pass.
        """
        selectivity = 1.0
        for flt in filters:
            if isinstance(flt, (FieldEqualsFilter, FieldRangeFilter)):
                selectivity *= self._exact_filter_fraction(table, flt)
            elif isinstance(flt, ContextMatchFilter):
                selectivity *= 1.0 / self._distinct_field(table, flt,
                                                          flt.field)
        return selectivity

    def _exact_filter_fraction(self, table: str, flt: Filter) -> float:
        if isinstance(flt, FieldEqualsFilter):
            cache_key = (table, "eq", flt.field, repr(flt.value))
        else:
            assert isinstance(flt, FieldRangeFilter)
            cache_key = (table, "range", flt.field, repr(flt.low),
                         repr(flt.high))
        if cache_key not in self._selectivity_cache:
            file = self._file(table)
            total = matched = 0
            for record in file.scan():
                total += 1
                if flt.matches(record, {}):
                    matched += 1
            self._selectivity_cache[cache_key] = (
                matched / total if total else 1.0)
        return self._selectivity_cache[cache_key]

    def _join_fanout(self, join: JoinNode) -> float:
        """Expected matching target records per probe key."""
        rows = self._rows(join.target)
        if join.via_index is not None:
            distinct = self._distinct_index_keys(join.via_index)
        else:
            distinct = self._distinct_loader_keys(join.target)
        return rows / max(1, distinct)

    # -- per-stage estimates ---------------------------------------------

    @property
    def _total_iops(self) -> float:
        return self.spec.node.disk.random_iops * self._pricing_nodes

    @property
    def _pricing_nodes(self) -> int:
        """Node count random-IO capacity is priced at.

        With a topology controller attached this tracks live membership
        and discounts one node's worth of capacity while a rebalance is
        in flight; without one it is the static spec — so estimates on
        static clusters are bit-identical to pre-topology builds.
        """
        if self.topology is None:
            return self.spec.num_nodes
        return self.topology.effective_nodes()

    def _cache_discount(self, structure_bytes: float,
                        ios: float) -> tuple[float, float]:
        """(effective IO seconds, hit CPU seconds) for ``ios`` reads."""
        hit_rate = expected_cache_hit_rate(self.spec, structure_bytes)
        misses = ios * (1.0 - hit_rate)
        hits = ios - misses
        return (misses / self._total_iops,
                hits * self.config.cache_hit_time / self.spec.num_nodes)

    def _tuple_seconds(self, tuples: float) -> float:
        node = self.spec.node
        return tuples * node.tuple_cpu_time / (self.spec.num_nodes
                                               * node.cores)

    def _delta_depth(self, table: Optional[str]) -> int:
        """Unmerged ingest delta runs a probe of ``table`` must consult."""
        if table is None:
            return 0
        return self.catalog.delta_depth(table)

    def _delta_probe_seconds(self, probes: float, runs: int) -> float:
        """Extra cost of delta-aware probes: one random read per run per
        probe (runs are small and uncached — no discount)."""
        if runs <= 0:
            return 0.0
        return probes * runs / self._total_iops

    def _scan_stage_seconds(self, table: str, probes: float,
                            fanout: float) -> float:
        """Build a replicated hash table by scanning, then probe it.

        On a fresh table the build also folds in the unmerged delta
        runs (the scan-backed stage merges them newest-wins at build
        time), so the price carries the extra sequential bytes and
        build CPU — exactly 0.0 extra on a static lake."""
        nbytes = self._bytes(table)
        rows = self._rows(table)
        spec = self.spec
        node = spec.node
        per_node_bytes = nbytes / spec.num_nodes
        scan = per_node_bytes / node.disk.seq_bandwidth
        # One core per node builds its local share of the table.
        build_cpu = (rows / spec.num_nodes) * node.tuple_cpu_time
        network = (per_node_bytes * (spec.num_nodes - 1) / spec.num_nodes
                   / spec.network.bandwidth)
        probe_cpu = self._tuple_seconds(probes * max(1.0, fanout))
        delta_seconds = 0.0
        for run in self.catalog.delta_runs(table):
            delta_bytes = sum(run.partition_bytes(pid)
                              for pid in run.partitions())
            delta_rows = sum(run.partition_len(pid)
                             for pid in run.partitions())
            delta_seconds += (delta_bytes / spec.num_nodes
                              / node.disk.seq_bandwidth
                              + (delta_rows / spec.num_nodes)
                              * node.tuple_cpu_time)
        return scan + build_cpu + network + probe_cpu + delta_seconds

    def _heap_pages_per_probe(self, table: str, fanout: float) -> float:
        file = self._file(table)
        page_size = self.spec.node.disk.page_size
        if not isinstance(file, PartitionedFile) or len(file) == 0:
            return 1.0
        return max(1.0, math.ceil(fanout * file.avg_record_bytes
                                  / page_size))

    def _index_join_seconds(self, join: JoinNode, probes: float,
                            fanout: float) -> float:
        disk = self.spec.node.disk
        probe_ios = 0.0
        hops = 1
        structure_bytes = float(self._bytes(join.target))
        if join.via_index is not None:
            index = self._file(join.via_index)
            if isinstance(index, BtreeFile):
                probe_ios = index.probe_io_count(max(1, round(fanout)))
            structure_bytes += self._bytes(join.via_index)
            hops = 2
        heap_pages = self._heap_pages_per_probe(join.target, fanout)
        if join.broadcast:
            # Every partition is probed; each pays at least one page.
            heap_pages = max(heap_pages,
                             float(self._file(join.target).num_partitions))
        ios = probes * (probe_ios + heap_pages)
        io_seconds, hit_seconds = self._cache_discount(structure_bytes, ios)
        cpu = self._tuple_seconds(probes * max(1.0, fanout))
        delta = self._delta_probe_seconds(
            probes, self._delta_depth(join.via_index)
            + self._delta_depth(join.target))
        return (hops * disk.random_service_time + io_seconds + hit_seconds
                + cpu + delta)

    def _source_estimates(self, source: SourceNode,
                          cardinality: float) -> StageEstimate:
        """Price the source: the probe is always indexed; the base fetch
        (when present) can be index- or scan-backed."""
        disk = self.spec.node.disk
        probe_ios = float(max(1, int(math.ceil(cardinality))))
        index_file = self._file(source.structure)
        if isinstance(index_file, BtreeFile):
            probe_ios = float(index_file.probe_io_count(
                max(1, int(math.ceil(cardinality)))))
        probe_io_seconds, probe_hit_seconds = self._cache_discount(
            float(self._bytes(source.structure)), probe_ios)
        probe_seconds = (disk.random_service_time + probe_io_seconds
                         + probe_hit_seconds
                         + self._tuple_seconds(cardinality)
                         + self._delta_probe_seconds(
                             cardinality, self._delta_depth(source.structure)))
        scan_seconds: Optional[float] = None
        if source.base is None:
            rows_out = cardinality * self._selectivity_of(source)
            return StageEstimate(
                label=f"source:{source.structure}",
                access_path=ACCESS_INDEX, index_seconds=probe_seconds,
                scan_seconds=None, rows_in=cardinality, rows_out=rows_out)
        fetch_pages = cardinality * self._heap_pages_per_probe(
            source.base, 1.0)
        fetch_io, fetch_hit = self._cache_discount(
            float(self._bytes(source.base)), fetch_pages)
        index_seconds = (probe_seconds + disk.random_service_time
                         + fetch_io + fetch_hit
                         + self._tuple_seconds(cardinality)
                         + self._delta_probe_seconds(
                             cardinality, self._delta_depth(source.base)))
        if self._scan_backable_base(source):
            scan_seconds = probe_seconds + self._scan_stage_seconds(
                source.base, probes=cardinality, fanout=1.0)
        rows_out = cardinality * self._selectivity_of(source)
        chosen = (ACCESS_SCAN
                  if scan_seconds is not None and scan_seconds < index_seconds
                  else ACCESS_INDEX)
        return StageEstimate(
            label=f"source:{source.structure}->{source.base}",
            access_path=chosen, index_seconds=index_seconds,
            scan_seconds=scan_seconds, rows_in=cardinality,
            rows_out=rows_out)

    def _selectivity_of(self, node: Union[SourceNode, JoinNode]) -> float:
        return self._filter_selectivity(node.fetches, node.filters)

    def _join_estimate(self, join: JoinNode,
                       rows_in: float) -> StageEstimate:
        fanout = self._join_fanout(join)
        index_seconds = self._index_join_seconds(join, rows_in, fanout)
        scan_seconds: Optional[float] = None
        if self._scan_backable_join(join):
            scan_seconds = self._scan_stage_seconds(join.target, rows_in,
                                                    fanout)
        chosen = (ACCESS_SCAN
                  if scan_seconds is not None and scan_seconds < index_seconds
                  else ACCESS_INDEX)
        if (chosen == ACCESS_INDEX and scan_seconds is not None
                and join.via_index is not None
                and not self.catalog.healthy(join.via_index)):
            # A degraded/quarantined index must not serve probes, whatever
            # its price: fall back to the scan-backed stage.
            chosen = ACCESS_SCAN
        rows_out = rows_in * fanout * self._selectivity_of(join)
        label = (f"join:{join.target}" if join.via_index is None
                 else f"join:{join.target} via {join.via_index}")
        return StageEstimate(
            label=label, access_path=chosen, index_seconds=index_seconds,
            scan_seconds=scan_seconds, rows_in=rows_in, rows_out=rows_out)

    # -- scan-backability -------------------------------------------------

    def _scan_backable_base(self, source: SourceNode) -> bool:
        # Fresh tables are fair game: the scan-backed stage's hash table
        # merges unmerged delta runs at build time (newest-wins), so the
        # planner prices scans against the delta-inclusive build cost
        # instead of gating them off.
        if source.base is None:
            return False
        return self._has_loader(source.base)

    def _scan_backable_join(self, join: JoinNode) -> bool:
        if join.broadcast:
            return False
        if not isinstance(self._file(join.target), PartitionedFile):
            return False
        if join.via_index is not None:
            try:
                self.catalog.definition(join.via_index)
            except Exception:
                return False
            return True
        return self._has_loader(join.target)

    def _touches_fresh_tables(self, logical: LogicalPlan) -> bool:
        """True when any structure in the chain has unmerged delta runs."""
        tables = [logical.source.structure, logical.source.base]
        for join in logical.joins:
            tables.append(join.target)
            tables.append(join.via_index)
        return any(self._delta_depth(table) for table in tables)

    def _has_loader(self, table: str) -> bool:
        try:
            self.catalog.dfs.loader_info(table)
        except Exception:
            return False
        return True

    # -- the plan ---------------------------------------------------------

    def plan(self, logical: LogicalPlan,
             per_match_access_factor: Optional[float] = None
             ) -> PlannedQuery:
        """Cost every stage, build the mixed plan, pick what to run."""
        if not logical.nodes:
            raise JobDefinitionError("cannot plan an empty chain")
        all_index = compile_logical(logical, self.catalog)
        index_job = all_index.to_job(self.catalog)
        cardinality = initial_cardinality(
            self.catalog, index_job.inputs, self.statistics,
            self._histograms, self.histogram_buckets)
        index_estimate = estimate_indexed_job_seconds(
            self.spec, self.catalog, index_job, per_match_access_factor,
            self.statistics, self._histograms, self.histogram_buckets,
            cache_hit_time=self.config.cache_hit_time)
        scan_plan: Optional[PlanNode] = None
        scan_estimate: Optional[float] = None
        try:
            scan_plan = to_scan_plan(logical, self.catalog)
        except JobDefinitionError:
            scan_plan = None
        if scan_plan is not None and self._touches_fresh_tables(logical):
            # Pure scan plans read base heaps only; with unmerged ingest
            # deltas anywhere in the chain they would answer stale.
            scan_plan = None
        if scan_plan is not None:
            scan_estimate = estimate_scan_plan_seconds(self.spec,
                                                       self.store,
                                                       scan_plan)

        estimates: list[StageEstimate] = []
        source_estimate = self._source_estimates(logical.source,
                                                 float(cardinality))
        estimates.append(source_estimate)
        rows = source_estimate.rows_out
        for join in logical.joins:
            estimate = self._join_estimate(join, rows)
            estimates.append(estimate)
            rows = estimate.rows_out
        for node, estimate in zip(logical.nodes, estimates):
            node.estimated_rows = estimate.rows_out
        mixed_paths = [e.access_path for e in estimates]
        mixed = compile_logical(logical, self.catalog, mixed_paths)
        mixed.stages = [
            replace(stage, estimated_rows=estimate.rows_out,
                    estimated_seconds=(estimate.scan_seconds
                                       if estimate.access_path == ACCESS_SCAN
                                       else estimate.index_seconds))
            for stage, estimate in zip(mixed.stages, estimates)]
        mixed_estimate = sum(
            (e.scan_seconds if e.access_path == ACCESS_SCAN
             else e.index_seconds)
            for e in estimates)

        best_degenerate = min(index_estimate,
                              scan_estimate if scan_estimate is not None
                              else math.inf)
        degenerate_choice = ("index"
                             if scan_estimate is None
                             or index_estimate <= scan_estimate
                             else "scan")
        if (not mixed.is_pure_index
                and mixed_estimate < self.margin * best_degenerate):
            chosen = "mixed"
        else:
            chosen = degenerate_choice

        # Health gating: a non-READY structure must not serve probes.
        # Unbuilt (PENDING/BUILDING) structures are healthy — laziness is
        # not sickness — so fault-free planning is unchanged.
        source_sick = not self.catalog.healthy(logical.source.structure)
        sick_joins = [join.via_index for join in logical.joins
                      if join.via_index is not None
                      and not self.catalog.healthy(join.via_index)]
        sick_index_stage = any(
            est.access_path == ACCESS_INDEX and join.via_index is not None
            and not self.catalog.healthy(join.via_index)
            for join, est in zip(logical.joins, estimates[1:]))
        if source_sick or sick_index_stage:
            # Even the mixed plan would touch the sick structure; only the
            # pure scan plan avoids it entirely.  Without one, the choice
            # stands and the engines' quarantine fallback covers the run.
            if scan_plan is not None:
                chosen = "scan"
        elif sick_joins and chosen == "index":
            # Every sick stage was forced to scan in the estimates, so the
            # mixed plan is the cheapest shape that avoids them all.
            chosen = "mixed"
        return PlannedQuery(
            logical=logical, mixed=mixed, all_index=all_index,
            scan_plan=scan_plan, stage_estimates=estimates,
            mixed_estimate=mixed_estimate, index_estimate=index_estimate,
            scan_estimate=scan_estimate, chosen=chosen,
            initial_cardinality=float(cardinality))
