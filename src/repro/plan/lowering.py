"""Lowering: LogicalPlan → PhysicalPlan → Job (or scan-engine plan).

Three compilers live here:

* :func:`compile_logical` — annotate each logical node with an access
  path and routing, producing a :class:`PhysicalPlan`.  The default is
  all-index, which lowers to *exactly* the function list the pre-plan
  ``ChainQuery`` emitted (the structural tests pin this).
* :func:`lower_physical` — emit the :class:`~repro.core.job.Job`.  Index
  stages use the classic referencer/dereferencer pairs; scan stages swap
  the fetch for a :class:`~repro.plan.scanstage.ScanLookupDereferencer`
  (resolved through the catalog's loader/access-method metadata), so one
  job interleaves both kinds.
* :func:`to_scan_plan` — the all-scan degenerate as a
  :mod:`repro.baselines.scan_engine` operator tree, when every node's
  keys and filters are expressible as scans (raises
  :class:`JobDefinitionError` otherwise; the planner treats that as
  "scan plan unavailable").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

from repro.baselines.scan_engine import HashJoinNode, PlanNode, ScanNode
from repro.core.functions import (
    Dereferencer,
    FileLookupDereferencer,
    IndexEntryReferencer,
    IndexLookupDereferencer,
    IndexRangeDereferencer,
    KeyReferencer,
    Referencer,
)
from repro.core.interpreters import (
    AndFilter,
    ContextMatchFilter,
    FieldEqualsFilter,
    FieldRangeFilter,
    Filter,
)
from repro.core.job import Job
from repro.core.pointers import Pointer, PointerRange
from repro.errors import JobDefinitionError
from repro.plan.logical import JoinNode, LogicalPlan, SourceNode
from repro.plan.physical import (
    ACCESS_INDEX,
    ACCESS_SCAN,
    PhysicalPlan,
    PhysicalStage,
)
from repro.plan.scanstage import KeyExtractor, ScanLookupDereferencer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.catalog import StructureCatalog

__all__ = ["compile_logical", "lower_physical", "to_scan_plan"]


def compile_logical(logical: LogicalPlan,
                    catalog: Optional["StructureCatalog"] = None,
                    access_paths: Optional[Sequence[str]] = None
                    ) -> PhysicalPlan:
    """Pin an access path and routing onto every logical node.

    Without ``access_paths`` every stage is index-backed — the identity
    compilation every pre-plan chain used.  The catalog, when given,
    refines routing from structure scopes; it is never required for the
    all-index path.
    """
    if not logical.nodes:
        raise JobDefinitionError("cannot compile an empty chain")
    if access_paths is None:
        access_paths = [ACCESS_INDEX] * len(logical.nodes)
    if len(access_paths) != len(logical.nodes):
        raise JobDefinitionError(
            f"{len(access_paths)} access paths for "
            f"{len(logical.nodes)} logical nodes")
    stages = []
    for node, path in zip(logical.nodes, access_paths):
        stages.append(PhysicalStage(
            node=node, access_path=path,
            routing=_routing_of(node, path, catalog),
            estimated_rows=node.estimated_rows))
    return PhysicalPlan(logical.name, logical.interpreter, stages)


def _routing_of(node: Union[SourceNode, JoinNode], path: str,
                catalog: Optional["StructureCatalog"]) -> str:
    if path == ACCESS_SCAN:
        return "replicated"  # the hash table is built on every node
    if isinstance(node, JoinNode):
        if node.broadcast:
            return "broadcast"
        probed = node.via_index if node.via_index is not None else node.target
        return _scope_routing(probed, catalog)
    return _scope_routing(node.structure, catalog)


def _scope_routing(structure: str,
                   catalog: Optional["StructureCatalog"]) -> str:
    if catalog is not None:
        try:
            scope = catalog.definition(structure).scope
        except Exception:
            scope = None
        if scope in ("local", "replicated"):
            return scope
    return "partitioned"


# -- physical -> Job --------------------------------------------------------


def lower_physical(physical: PhysicalPlan,
                   catalog: Optional["StructureCatalog"] = None) -> Job:
    """Emit the Reference-Dereference job a physical plan denotes.

    All-index plans need no catalog and reproduce the classic chain
    compilation function-for-function.  Scan stages resolve their join
    keys through the catalog (loader key for direct joins, access-method
    keys for ``via_index`` joins).
    """
    interpreter = physical.interpreter
    functions: list[Union[Referencer, Dereferencer]] = []
    inputs: list[Union[Pointer, PointerRange]] = []
    for stage in physical.stages:
        node = stage.node
        scan_backed = stage.access_path == ACCESS_SCAN
        if scan_backed and catalog is None:
            raise JobDefinitionError(
                f"lowering the scan-backed stage for {node.fetches!r} "
                "needs a catalog to resolve its join keys")
        if isinstance(node, SourceNode):
            _lower_source(node, scan_backed, catalog, functions, inputs)
        else:
            _lower_join(node, scan_backed, interpreter, catalog, functions)
    return Job(functions, inputs, name=physical.name)


def _lower_source(node: SourceNode, scan_backed: bool,
                  catalog: Optional["StructureCatalog"],
                  functions: list, inputs: list) -> None:
    if node.kind == "index_range":
        functions.append(IndexRangeDereferencer(node.structure))
        inputs.append(PointerRange(node.structure, node.low, node.high))
    elif node.kind == "index_lookup":
        functions.append(IndexLookupDereferencer(node.structure))
        inputs.extend(Pointer(node.structure, key, key)
                      for key in node.keys)
    else:  # pointers
        functions.append(FileLookupDereferencer(node.structure))
        inputs.extend(Pointer(node.structure, key, key)
                      for key in node.keys)
    if node.base is not None:
        functions.append(IndexEntryReferencer(node.base))
        if scan_backed:
            functions.append(ScanLookupDereferencer(
                node.base, _loader_keys(catalog, node.base),
                filter=_fold_filters(node.filters),
                delta_source=_delta_source(catalog, node.base),
                key_id=(node.base, None)))
            return
        functions.append(FileLookupDereferencer(node.base))
    # Filters attach to the node's last dereferencer (the base fetch when
    # one exists, else the probe itself).
    _attach_filters(functions[-1], node.filters)


def _lower_join(node: JoinNode, scan_backed: bool, interpreter,
                catalog: Optional["StructureCatalog"],
                functions: list) -> None:
    if scan_backed:
        # The referencer targets the base file directly — the hash table
        # subsumes both the optional secondary index and the heap fetch.
        functions.append(KeyReferencer(
            node.target, interpreter, key_field=node.key,
            key_from_context=node.context_key, carry=node.carry,
            broadcast=False))
        functions.append(ScanLookupDereferencer(
            node.target, _scan_join_keys(catalog, node),
            filter=_fold_filters(node.filters),
            delta_source=_delta_source(catalog, node.target),
            key_id=(node.target, node.via_index)))
        return
    probe_target = (node.via_index if node.via_index is not None
                    else node.target)
    functions.append(KeyReferencer(
        probe_target, interpreter, key_field=node.key,
        key_from_context=node.context_key, carry=node.carry,
        broadcast=node.broadcast))
    if node.via_index is not None:
        functions.append(IndexLookupDereferencer(node.via_index))
        functions.append(IndexEntryReferencer(node.target))
        functions.append(FileLookupDereferencer(node.target))
    else:
        functions.append(FileLookupDereferencer(node.target))
    _attach_filters(functions[-1], node.filters)


def _attach_filters(dereferencer: Dereferencer,
                    filters: Sequence[Filter]) -> None:
    for new_filter in filters:
        if dereferencer.filter is None:
            dereferencer.filter = new_filter
        else:
            dereferencer.filter = AndFilter(dereferencer.filter, new_filter)


def _fold_filters(filters: Sequence[Filter]) -> Optional[Filter]:
    folded: Optional[Filter] = None
    for new_filter in filters:
        folded = (new_filter if folded is None
                  else AndFilter(folded, new_filter))
    return folded


def _delta_source(catalog: "StructureCatalog", name: str):
    """Delta plumbing for a scan-backed stage over base file ``name``:
    a thunk yielding (current unmerged runs, loader in-partition key fn),
    so the stage's hash table merges fresh data (newest-wins) and is
    invalidated when a new run commits."""
    try:
        info = catalog.dfs.loader_info(name)
    except Exception:
        return None

    def source():
        return catalog.delta_runs(name), info.key_fn

    return source


def _loader_keys(catalog: "StructureCatalog", name: str) -> KeyExtractor:
    info = catalog.dfs.loader_info(name)

    def keys(record) -> list:
        key = info.key_fn(record)
        return [] if key is None else [key]

    return keys


def _scan_join_keys(catalog: "StructureCatalog",
                    node: JoinNode) -> KeyExtractor:
    """Which key(s) a target record is findable under for this join."""
    if node.via_index is not None:
        return catalog.definition(node.via_index).extract_keys
    return _loader_keys(catalog, node.target)


# -- logical -> all-scan operator tree --------------------------------------


def to_scan_plan(logical: LogicalPlan,
                 catalog: "StructureCatalog") -> PlanNode:
    """The all-scan degenerate plan: left-deep grace hash joins.

    Each chain hop becomes ``HashJoin(build=chain-so-far,
    probe=Scan(target))``; source predicates and field filters push into
    the scans, context-match filters become join residuals.  Raises
    :class:`JobDefinitionError` when a node cannot be expressed as a scan
    (opaque key functions or predicate filters) — callers treat that as
    "no scan plan for this query".
    """
    source = logical.source
    if source.base is None and source.kind != "pointers":
        raise JobDefinitionError(
            "a bare index probe has no scan equivalent (no base records "
            "are fetched)")
    # ``ctx name -> row field`` accumulated from carry specs, so residuals
    # and context-keyed joins can find the originating column.
    ctx_fields: dict[str, str] = {}
    plan: PlanNode = _source_scan(source, catalog, logical)
    for join in logical.joins:
        for ctx_name, fieldname in join.carry.items():
            ctx_fields[ctx_name] = fieldname
        plan = _join_scan(plan, join, catalog, logical, ctx_fields)
    return plan


def _field_predicate(filters: Sequence[Filter],
                     extra: Optional[Callable[[dict], bool]] = None
                     ) -> Optional[Callable[[dict], bool]]:
    checks: list[Callable[[dict], bool]] = [extra] if extra else []
    for flt in filters:
        if isinstance(flt, FieldEqualsFilter):
            checks.append(_equals_check(flt.field, flt.value))
        elif isinstance(flt, FieldRangeFilter):
            checks.append(_range_check(flt.field, flt.low, flt.high))
        elif isinstance(flt, ContextMatchFilter):
            continue  # becomes a join residual
        else:
            raise JobDefinitionError(
                f"filter {type(flt).__name__} has no scan equivalent")
    if not checks:
        return None
    if len(checks) == 1:
        return checks[0]
    return lambda row: all(check(row) for check in checks)


def _equals_check(fieldname: str, value: Any) -> Callable[[dict], bool]:
    return lambda row: row.get(fieldname) == value


def _range_check(fieldname: str, low: Any,
                 high: Any) -> Callable[[dict], bool]:
    def check(row: dict) -> bool:
        value = row.get(fieldname)
        if value is None:
            return False
        if low is not None and value < low:
            return False
        if high is not None and value > high:
            return False
        return True

    return check


def _source_scan(source: SourceNode, catalog: "StructureCatalog",
                 logical: LogicalPlan) -> ScanNode:
    if source.kind == "pointers":
        raise JobDefinitionError(
            "pointer sources use opaque loader keys; no scan equivalent")
    defn = catalog.definition(source.structure)
    if defn.key_field is None:
        raise JobDefinitionError(
            f"index {source.structure!r} uses a key function; its probe "
            "cannot be re-expressed as a scan predicate")
    fieldname = defn.key_field
    if source.kind == "index_range":
        probe = _range_check(fieldname, source.low, source.high)
    else:
        wanted = set(source.keys)
        probe = lambda row: row.get(fieldname) in wanted  # noqa: E731
    return ScanNode(source.base,  # type: ignore[arg-type]
                    predicate=_field_predicate(source.filters, probe),
                    interpreter=logical.interpreter)


def _join_scan(build: PlanNode, join: JoinNode,
               catalog: "StructureCatalog", logical: LogicalPlan,
               ctx_fields: dict[str, str]) -> HashJoinNode:
    if join.key is not None:
        build_field = join.key
    else:
        assert join.context_key is not None
        build_field = ctx_fields.get(join.context_key, join.context_key)
    if join.via_index is not None:
        defn = catalog.definition(join.via_index)
        if defn.key_field is None:
            raise JobDefinitionError(
                f"index {join.via_index!r} uses a key function; the join "
                "cannot be re-expressed as a scan")
        probe_key = _row_field(defn.key_field)
    else:
        info = catalog.dfs.loader_info(join.target)
        # Loader extractors subscript their record; joined rows are flat
        # dicts with the same field names, so they apply directly.
        probe_key = info.key_fn
    residual = _residual_of(join, ctx_fields)
    return HashJoinNode(
        build=build,
        probe=ScanNode(join.target,
                       predicate=_field_predicate(join.filters),
                       interpreter=logical.interpreter),
        build_key=_row_field(build_field),
        probe_key=probe_key,
        residual=residual)


def _row_field(fieldname: str) -> Callable[[dict], Any]:
    return lambda row: row.get(fieldname)


def _residual_of(join: JoinNode, ctx_fields: dict[str, str]
                 ) -> Optional[Callable[[dict], bool]]:
    residuals = []
    for flt in join.filters:
        if isinstance(flt, ContextMatchFilter):
            origin = ctx_fields.get(flt.context_key, flt.context_key)
            residuals.append((flt.field, origin))
    if not residuals:
        return None

    def residual(row: dict) -> bool:
        return all(row.get(fieldname) == row.get(origin)
                   for fieldname, origin in residuals)

    return residual
