"""Logical plans: what a chain query *means*, before access paths.

A :class:`LogicalPlan` is a linear sequence of typed nodes — one
:class:`SourceNode` followed by :class:`JoinNode`\\ s — each carrying its
filters, the context fields available after it (``carried_context``), and
an optional cardinality annotation filled in by the planner.  It is the
shared currency between the :class:`~repro.core.chain.ChainQuery`
frontend, the per-stage planner, and the lowerings to
:class:`~repro.core.job.Job` / scan-engine plans.

Validation is eager: malformed chains raise
:class:`~repro.errors.JobDefinitionError` at build time (the frontend
method call), not deep inside an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from repro.core.interpreters import Filter, Interpreter, MappingInterpreter
from repro.errors import JobDefinitionError

__all__ = ["SourceNode", "JoinNode", "LogicalNode", "LogicalPlan"]

#: kinds a :class:`SourceNode` can take
SOURCE_KINDS = ("index_range", "index_lookup", "pointers")


@dataclass
class SourceNode:
    """The chain's single entry point: an index probe or direct fetch.

    ``structure`` is the structure stage 0 dereferences (an index for the
    ``index_*`` kinds, a base file for ``pointers``); ``base`` optionally
    names the base file whose records the index entries are followed
    into.
    """

    kind: str
    structure: str
    base: Optional[str] = None
    low: Any = None
    high: Any = None
    keys: tuple = ()
    filters: list[Filter] = field(default_factory=list)
    #: context fields available downstream of this node
    carried_context: tuple[str, ...] = ()
    #: planner annotation: estimated rows flowing out of this node
    estimated_rows: Optional[float] = None

    @property
    def fetches(self) -> str:
        """The structure whose records this node emits."""
        return self.base if self.base is not None else self.structure

    def describe(self) -> str:
        if self.kind == "index_range":
            detail = f"range[{self.low!r}..{self.high!r}] {self.structure}"
        elif self.kind == "index_lookup":
            detail = f"lookup[{len(self.keys)} keys] {self.structure}"
        else:
            detail = f"pointers[{len(self.keys)} keys] {self.structure}"
        if self.base is not None:
            detail += f" -> {self.base}"
        return f"source {detail}"


@dataclass
class JoinNode:
    """One index nested-loop join hop of the chain."""

    target: str
    key: Optional[str] = None
    context_key: Optional[str] = None
    via_index: Optional[str] = None
    #: context additions this join makes: ``{ctx_name: record_field}``
    carry: dict[str, str] = field(default_factory=dict)
    broadcast: bool = False
    filters: list[Filter] = field(default_factory=list)
    carried_context: tuple[str, ...] = ()
    estimated_rows: Optional[float] = None

    @property
    def fetches(self) -> str:
        return self.target

    def describe(self) -> str:
        via = f" via {self.via_index}" if self.via_index else ""
        how = (f"key={self.key}" if self.key is not None
               else f"context_key={self.context_key}")
        mode = " broadcast" if self.broadcast else ""
        return f"join {self.target}{via} ({how}){mode}"


LogicalNode = Union[SourceNode, JoinNode]


class LogicalPlan:
    """An ordered, validated select-join chain."""

    def __init__(self, name: str = "chain",
                 interpreter: Optional[Interpreter] = None) -> None:
        self.name = name
        self.interpreter = interpreter or MappingInterpreter()
        self.nodes: list[LogicalNode] = []

    # -- construction (eagerly validated) --------------------------------

    def add_source(self, kind: str, structure: str,
                   base: Optional[str] = None, low: Any = None,
                   high: Any = None,
                   keys: Sequence[Any] = ()) -> SourceNode:
        if kind not in SOURCE_KINDS:
            raise JobDefinitionError(
                f"unknown source kind {kind!r} (expected one of "
                f"{SOURCE_KINDS})")
        if self.nodes:
            raise JobDefinitionError(
                "a chain can have only one source (from_* called twice?)")
        node = SourceNode(kind=kind, structure=structure, base=base,
                          low=low, high=high, keys=tuple(keys))
        self.nodes.append(node)
        return node

    def add_join(self, target: str, key: Optional[str] = None,
                 context_key: Optional[str] = None,
                 via_index: Optional[str] = None,
                 carry: Union[Sequence[str], Mapping[str, str], None] = None,
                 broadcast: bool = False) -> JoinNode:
        self._require_started("joins")
        if (key is None) == (context_key is None):
            raise JobDefinitionError(
                f"join to {target!r} needs exactly one of key or "
                "context_key")
        available = self.carried_context
        if context_key is not None and context_key not in available:
            carried = (", ".join(sorted(available))
                       if available else "nothing")
            raise JobDefinitionError(
                f"join(context_key={context_key!r}) refers to a context "
                f"field that is never carried (carried so far: {carried})")
        carry_map = self._check_carry(target, carry)
        node = JoinNode(target=target, key=key, context_key=context_key,
                        via_index=via_index, carry=carry_map,
                        broadcast=broadcast,
                        carried_context=tuple(
                            dict.fromkeys(available + tuple(carry_map))))
        self.nodes.append(node)
        return node

    def add_filter(self, new_filter: Filter) -> None:
        self._require_started("filters")
        self.nodes[-1].filters.append(new_filter)

    @staticmethod
    def _check_carry(target: str,
                     carry: Union[Sequence[str], Mapping[str, str], None]
                     ) -> dict[str, str]:
        """Normalize a carry spec, rejecting duplicate context names."""
        if carry is None:
            return {}
        if isinstance(carry, Mapping):
            return dict(carry)
        names = list(carry)
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise JobDefinitionError(
                f"duplicate carry name(s) in join to {target!r}: "
                f"{', '.join(duplicates)}")
        return {name: name for name in names}

    def _require_started(self, what: str) -> None:
        if not self.nodes:
            raise JobDefinitionError(
                f"call a from_* source before {what}")

    # -- views -----------------------------------------------------------

    @property
    def source(self) -> SourceNode:
        if not self.nodes:
            raise JobDefinitionError("the chain has no source yet")
        return self.nodes[0]  # type: ignore[return-value]

    @property
    def joins(self) -> list[JoinNode]:
        return [n for n in self.nodes[1:] if isinstance(n, JoinNode)]

    @property
    def carried_context(self) -> tuple[str, ...]:
        """Context fields available after the last node."""
        if not self.nodes:
            return ()
        return self.nodes[-1].carried_context

    def structures(self) -> list[str]:
        """Every structure the plan touches, in node order."""
        names: list[str] = []
        for node in self.nodes:
            if isinstance(node, SourceNode):
                names.append(node.structure)
                if node.base is not None:
                    names.append(node.base)
            else:
                if node.via_index is not None:
                    names.append(node.via_index)
                names.append(node.target)
        return names

    def describe(self) -> str:
        lines = [f"LogicalPlan {self.name!r} ({len(self.nodes)} nodes)"]
        for index, node in enumerate(self.nodes):
            line = f"  [{index}] {node.describe()}"
            if node.filters:
                line += ("  [filters: "
                         + ", ".join(type(f).__name__ for f in node.filters)
                         + "]")
            if node.estimated_rows is not None:
                line += f"  ~{node.estimated_rows:.0f} rows"
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self) -> str:
        chain = " -> ".join(n.fetches for n in self.nodes)
        return f"LogicalPlan({self.name!r}: {chain})"
