"""Physical plans: one access-path decision per logical node.

A :class:`PhysicalStage` pins down *how* a logical node's records are
reached — ``index`` (probe B-trees / fetch heap pages by pointer, today's
only mode) or ``scan`` (replicate a hash table built from one sequential
pass over the target, then probe it in memory) — and how probes are
*routed* (``partitioned`` to the owning partition, ``broadcast`` to every
partition, ``replicated``/``local`` per the structure's scope).

Lowering a physical plan yields an ordinary
:class:`~repro.core.job.Job`, so every existing engine executes mixed
plans unchanged (see :mod:`repro.plan.lowering`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.interpreters import Interpreter
from repro.errors import JobDefinitionError
from repro.plan.logical import JoinNode, LogicalNode, SourceNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.catalog import StructureCatalog
    from repro.core.job import Job

__all__ = ["ACCESS_INDEX", "ACCESS_SCAN", "PhysicalStage", "PhysicalPlan"]

#: probe structures with pointers (B-tree probes + heap-page fetches)
ACCESS_INDEX = "index"
#: one sequential pass builds a replicated hash table; probes hit memory
ACCESS_SCAN = "scan"

_ROUTINGS = ("partitioned", "broadcast", "replicated", "local")


@dataclass(frozen=True)
class PhysicalStage:
    """One logical node with its chosen access path and routing."""

    node: LogicalNode
    access_path: str
    routing: str
    estimated_rows: Optional[float] = None
    estimated_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.access_path not in (ACCESS_INDEX, ACCESS_SCAN):
            raise JobDefinitionError(
                f"unknown access path {self.access_path!r}")
        if self.routing not in _ROUTINGS:
            raise JobDefinitionError(f"unknown routing {self.routing!r}")
        if self.access_path == ACCESS_SCAN:
            if isinstance(self.node, JoinNode) and self.node.broadcast:
                raise JobDefinitionError(
                    "a broadcast join cannot be scan-backed (the hash "
                    "table already reaches every partition)")

    def describe(self) -> str:
        line = f"{self.node.describe()}  [{self.access_path}/{self.routing}]"
        if self.estimated_rows is not None:
            line += f"  ~{self.estimated_rows:.0f} rows"
        if self.estimated_seconds is not None:
            line += f"  ~{self.estimated_seconds * 1e3:.2f}ms"
        return line


class PhysicalPlan:
    """An executable per-stage plan; lowers to a plain :class:`Job`."""

    def __init__(self, name: str, interpreter: Interpreter,
                 stages: list[PhysicalStage]) -> None:
        if not stages:
            raise JobDefinitionError("a physical plan needs stages")
        if not isinstance(stages[0].node, SourceNode):
            raise JobDefinitionError(
                "the first physical stage must wrap the source node")
        self.name = name
        self.interpreter = interpreter
        self.stages = list(stages)

    @property
    def access_paths(self) -> tuple[str, ...]:
        return tuple(stage.access_path for stage in self.stages)

    @property
    def is_pure_index(self) -> bool:
        return all(path == ACCESS_INDEX for path in self.access_paths)

    def to_job(self, catalog: Optional["StructureCatalog"] = None) -> "Job":
        """Lower to a Reference-Dereference job (see lowering module)."""
        from repro.plan.lowering import lower_physical

        return lower_physical(self, catalog)

    def describe(self) -> str:
        lines = [f"PhysicalPlan {self.name!r} ({len(self.stages)} stages)"]
        for index, stage in enumerate(self.stages):
            lines.append(f"  [{index}] {stage.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        chain = " -> ".join(
            f"{stage.node.fetches}:{stage.access_path}"
            for stage in self.stages)
        return f"PhysicalPlan({self.name!r}: {chain})"
