"""The plan layer: a shared IR between frontends, optimizer, and engines.

Section V-A of the paper calls higher-level abstractions "an opportunity
for query optimizations"; Section V-D frames integration with
scan-oriented systems.  This package is the lever for both: chains build
a :class:`LogicalPlan`, the per-stage planner picks an access path for
every stage (:class:`PhysicalPlan`), and lowering emits the plain
:class:`~repro.core.job.Job` (or scan-engine operator tree) the existing
engines run unchanged.

Layering: ``plan`` sits between ``core`` and ``engine`` — it may import
``core``, ``storage``, ``cluster``, and ``baselines``, and is imported by
``engine`` and (lazily) by ``core.chain``.  It must never import
``engine``.
"""

from repro.plan.logical import JoinNode, LogicalPlan, SourceNode
from repro.plan.lowering import compile_logical, lower_physical, to_scan_plan
from repro.plan.physical import (
    ACCESS_INDEX,
    ACCESS_SCAN,
    PhysicalPlan,
    PhysicalStage,
)
from repro.plan.planner import PlannedQuery, StageEstimate, StagePlanner
from repro.plan.scanstage import ScanLookupDereferencer

__all__ = [
    "ACCESS_INDEX",
    "ACCESS_SCAN",
    "JoinNode",
    "LogicalPlan",
    "PhysicalPlan",
    "PhysicalStage",
    "PlannedQuery",
    "ScanLookupDereferencer",
    "SourceNode",
    "StageEstimate",
    "StagePlanner",
    "compile_logical",
    "lower_physical",
    "to_scan_plan",
]
