"""The scan-backed stage: a replicated hash table probed like a structure.

:class:`ScanLookupDereferencer` is how a *scan* access path rides inside
an ordinary Reference-Dereference job: upstream referencers emit the same
keyed pointers they always do, but instead of paying a random read per
probe, the first probe triggers one sequential pass over the target file
(every node scans its local partitions, builds a hash table on the join
key, and replicates it — charged in :mod:`repro.engine.access`), and
every probe after that is an in-memory hash lookup.

The table answers every pointer shape an upstream stage can emit:

* **logical key pointers** (joins) hit the ``key_of`` join keys;
* **physical pointers** (index entries targeting base slots) hit
  per-``(partition, slot)`` entries recorded during the scan;
* **delta-tag pointers** (index delta entries, see
  :func:`repro.ingest.delta.delta_tag`) hit the tag of the live delta
  payload that produced them.

With a ``delta_source`` attached (the lowering wires one from the
catalog), the build is *fresh*: heap records superseded by unmerged
delta upserts are dropped (the scan-side tombstone filter) and live
delta payloads are merged in with cross-run newest-wins — so the
planner can price scans on fresh tables instead of gating them off.
The table is cached per (file, set of unmerged runs): a new committed
run invalidates it, and the next probe rebuilds (and re-charges) it.

This mirrors what a scan engine's grace hash join does with the build
side, expressed as a dereferencer so SMPE/partitioned/reference engines
can interleave scan stages with index stages in one job.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.core.interpreters import Filter
from repro.core.pointers import Pointer, PointerKind, PointerRange
from repro.core.records import Record
from repro.core.functions import Dereferencer
from repro.errors import ExecutionError, JobDefinitionError
from repro.storage.files import File, PartitionedFile

__all__ = ["ScanLookupDereferencer"]

#: ``Record -> list of join keys`` (multi-valued keys supported)
KeyExtractor = Callable[[Record], list]

#: namespace marker for physical (partition, slot) table entries, so slot
#: integers can never collide with logical join keys
_SLOT = "Δslot"


class ScanLookupDereferencer(Dereferencer):
    """Fetch by key from a hash table built by scanning the whole file.

    ``key_of`` extracts the join key(s) a record is findable under.  The
    table is built lazily per (file, delta-run set) and shared by every
    probe; ``runtime`` is scratch space for the engine-side cost charging
    (one scan per cluster per run set, concurrent probes wait on the
    build).  ``delta_source`` (optional) supplies the base file's current
    unmerged :class:`~repro.ingest.delta.DeltaRun` list and the loader's
    in-partition key function; without one the table sees the base heap
    only, exactly as before streaming existed.
    """

    def __init__(self, file_name: str, key_of: KeyExtractor,
                 filter: Optional[Filter] = None,
                 delta_source: Optional[Callable[[], tuple]] = None,
                 key_id: Optional[tuple] = None) -> None:
        super().__init__(file_name, filter)
        self.key_of = key_of
        self.delta_source = delta_source
        #: value-based identity of the table this stage builds —
        #: ``(target file, via-index or None)`` — assigned by the
        #: lowering.  Tables are built *pre-filter* (filters apply at
        #: fetch), so two stages with the same ``key_id`` build the same
        #: table and may share it through an attached result cache.
        self.key_id = key_id
        #: optional :class:`~repro.service.result_cache.
        #: SemanticResultCache` handle (tier A); None = no sharing.
        self.cache: Optional[Any] = None
        self._tables: dict[tuple, dict[Any, list[Record]]] = {}
        #: per-cluster build state, keyed by ``id(cluster)`` — owned by
        #: :func:`repro.engine.access.simulated_dereference`
        self.runtime: dict[int, dict[str, Any]] = {}

    # -- delta plumbing --------------------------------------------------

    def current_runs(self) -> tuple[list, Optional[Callable]]:
        """``(unmerged runs, loader key_fn)`` for the target base file."""
        if self.delta_source is None:
            return [], None
        return self.delta_source()

    def delta_token(self) -> tuple:
        """Identity of the run set the current table must reflect."""
        runs, __ = self.current_runs()
        return tuple(id(run) for run in runs)

    def delta_bytes_on(self, file: File, pids: list[int]) -> tuple[int, int]:
        """(bytes, rows) of unmerged delta data over ``pids`` — the extra
        sequential work a fresh-table build pays on one node."""
        runs, __ = self.current_runs()
        nbytes = rows = 0
        for run in runs:
            for pid in pids:
                nbytes += run.partition_bytes(pid)
                rows += run.partition_len(pid)
        return nbytes, rows

    # -- table sharing (tier A of the semantic result cache) -------------

    def adopt_cached(self, file: File) -> bool:
        """Take a previously built table from the attached cache.

        Returns True only when a table was actually adopted this call —
        an already-present local table returns False, so callers can
        count adoption (and skip the build charge) exactly once.
        """
        if self.cache is None or self.key_id is None:
            return False
        token = (id(file), self.delta_token())
        if token in self._tables:
            return False
        table = self.cache.get_table(self.key_id, token)
        if table is None:
            return False
        self._tables[token] = table
        return True

    def publish_table(self, file: File, nbytes: int) -> None:
        """Offer the freshly built table to the attached cache."""
        if self.cache is None or self.key_id is None:
            return
        token = (id(file), self.delta_token())
        table = self._tables.get(token)
        if table is not None:
            self.cache.put_table(self.key_id, token, table, nbytes,
                                 structures=[name for name in self.key_id
                                             if isinstance(name, str)])

    # -- the table -------------------------------------------------------

    def has_table(self, file: File) -> bool:
        return (id(file), self.delta_token()) in self._tables

    def table_for(self, file: File) -> dict[Any, list[Record]]:
        """The hash table over ``file`` (plus live deltas), built on
        first use and rebuilt when the unmerged-run set changes."""
        if not isinstance(file, PartitionedFile):
            raise JobDefinitionError(
                f"{type(self).__name__} targets {self.file_name!r}, which "
                "is not a base file (scan-backed stages scan heap files)")
        runs, base_key_fn = self.current_runs()
        token = (id(file), tuple(id(run) for run in runs))
        table = self._tables.get(token)
        if table is not None:
            return table
        from repro.ingest.delta import dead_base_keys

        table = {}
        for pid in range(file.num_partitions):
            dead = dead_base_keys(runs, pid) if runs else frozenset()
            for slot, record in enumerate(file.scan_partition(pid)):
                if (dead and base_key_fn is not None
                        and base_key_fn(record) in dead):
                    # Superseded by a delta upsert: the scan-side analogue
                    # of the index tombstone filter.
                    continue
                for key in self.key_of(record):
                    table.setdefault(key, []).append(record)
                table[(_SLOT, pid, slot)] = [record]
        for i, run in enumerate(runs):
            newer = runs[i + 1:]
            for pid in run.partitions():
                for __, payload, (bpid, bkey), tag in run.items(pid):
                    if any(bkey in later.upserts.get(bpid, frozenset())
                           for later in newer):
                        continue  # newest wins across runs
                    for key in self.key_of(payload):
                        table.setdefault(key, []).append(payload)
                    if tag is not None:
                        table[tag] = [payload]
        self._tables[token] = table
        return table

    def fetch(self, file: File, target: Union[Pointer, PointerRange],
              partition_id: int) -> list[Record]:
        if isinstance(target, PointerRange):
            raise ExecutionError(
                "scan-backed dereferencer cannot take a pointer range")
        if target.partition_key is None:
            raise ExecutionError(
                "scan-backed dereferencer cannot take broadcast pointers "
                "(the hash table already covers every partition)")
        # partition_id is irrelevant: the table is replicated everywhere.
        table = self.table_for(file)
        if target.kind is PointerKind.PHYSICAL:
            # Index entries address base records by (routing key, slot);
            # resolve against the physical entries the scan recorded.
            pid = file.partition_of_key(target.partition_key)
            return list(table.get((_SLOT, pid, target.key), ()))
        return list(table.get(target.key, ()))
