"""The scan-backed stage: a replicated hash table probed like a structure.

:class:`ScanLookupDereferencer` is how a *scan* access path rides inside
an ordinary Reference-Dereference job: upstream referencers emit the same
keyed pointers they always do, but instead of paying a random read per
probe, the first probe triggers one sequential pass over the target file
(every node scans its local partitions, builds a hash table on the join
key, and replicates it — charged in :mod:`repro.engine.access`), and
every probe after that is an in-memory hash lookup.

This mirrors what a scan engine's grace hash join does with the build
side, expressed as a dereferencer so SMPE/partitioned/reference engines
can interleave scan stages with index stages in one job.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.core.interpreters import Filter
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.core.functions import Dereferencer
from repro.errors import ExecutionError, JobDefinitionError
from repro.storage.files import File, PartitionedFile

__all__ = ["ScanLookupDereferencer"]

#: ``Record -> list of join keys`` (multi-valued keys supported)
KeyExtractor = Callable[[Record], list]


class ScanLookupDereferencer(Dereferencer):
    """Fetch by key from a hash table built by scanning the whole file.

    ``key_of`` extracts the join key(s) a record is findable under.  The
    table is built lazily per file object and shared by every probe;
    ``runtime`` is scratch space for the engine-side cost charging (one
    scan per cluster, concurrent probes wait on the build).
    """

    def __init__(self, file_name: str, key_of: KeyExtractor,
                 filter: Optional[Filter] = None) -> None:
        super().__init__(file_name, filter)
        self.key_of = key_of
        self._tables: dict[int, dict[Any, list[Record]]] = {}
        #: per-cluster build state, keyed by ``id(cluster)`` — owned by
        #: :func:`repro.engine.access.simulated_dereference`
        self.runtime: dict[int, dict[str, Any]] = {}

    def has_table(self, file: File) -> bool:
        return id(file) in self._tables

    def table_for(self, file: File) -> dict[Any, list[Record]]:
        """The hash table over ``file``, built on first use."""
        if not isinstance(file, PartitionedFile):
            raise JobDefinitionError(
                f"{type(self).__name__} targets {self.file_name!r}, which "
                "is not a base file (scan-backed stages scan heap files)")
        table = self._tables.get(id(file))
        if table is None:
            table = {}
            for pid in range(file.num_partitions):
                for record in file.scan_partition(pid):
                    for key in self.key_of(record):
                        table.setdefault(key, []).append(record)
            self._tables[id(file)] = table
        return table

    def fetch(self, file: File, target: Union[Pointer, PointerRange],
              partition_id: int) -> list[Record]:
        if isinstance(target, PointerRange):
            raise ExecutionError(
                "scan-backed dereferencer cannot take a pointer range")
        if target.partition_key is None:
            raise ExecutionError(
                "scan-backed dereferencer cannot take broadcast pointers "
                "(the hash table already covers every partition)")
        # partition_id is irrelevant: the table is replicated everywhere.
        return list(self.table_for(file).get(target.key, ()))
