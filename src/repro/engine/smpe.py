"""Scalable Massively Parallel Execution — Algorithm 1 of the paper.

The execution model (paper Fig. 6): "ReDe divides a data processing job into
multiple stages and executes one of the given functions (i.e., *Referencer*
and *Dereferencer*) in each stage.  Each stage has an input queue and an
output queue, and the output queue of one stage is the input queue of the
next stage."  As in the pseudocode, each node runs one dispatcher over a
single queue of stage-tagged inputs; every dereference invocation gets its
own (pooled) thread, so parallelism is discovered dynamically from the data
rather than fixed up front.

Mapping to Algorithm 1:

==============================  =============================================
Pseudocode                      Here
==============================  =============================================
``EXECUTESMPE`` (lines 1-7)     :meth:`SmpeEngine.execute` — launch
                                ``EXECUTESMPEEACH`` on every node, wait
``EXECUTESMPEEACH`` (8-18)      :meth:`SmpeEngine._node_main`
``EXECUTEINITIALSTAGE`` (19-24) :meth:`SmpeEngine._initial_stage`
``EXECUTESTAGES`` (25-42)       :meth:`SmpeEngine._dispatcher` — the
                                dequeue loop, broadcast handling
                                (lines 28-33), null-func handling (36-38,
                                reinterpreted as result collection), and
                                per-input thread dispatch (39-40)
``EXECUTEFUNC`` (43-52)         :meth:`SmpeEngine._execute_dereferencer` /
                                :meth:`SmpeEngine._execute_referencer` —
                                run the function, push emitted outputs to
                                the next stage's queue entries
==============================  =============================================

Simulated threads come from a per-node pool ("ReDe manages threads in a
thread pool and reuses them ... 1000 threads in the default setting").
Referencers run inline on the dispatching thread by default ("ReDe does not
switch threads for *Referencers* ... to avoid excessive context
switching"); ``EngineConfig.inline_referencers=False`` restores per-call
dispatch, paying ``thread_switch_time`` — the ablation benchmark flips this
switch.

Fault tolerance
---------------

Every dereference goes through
:func:`~repro.engine.access.resilient_dereference` (retries with capped
exponential backoff, per-invocation timeouts, crash re-routing), and the
control plane absorbs permanent node crashes: a crash listener drains the
dead node's stage queue into the survivor that adopted its partitions
(queue entries remember their ``home_node`` so ``LOCAL`` partition
resolution still refers to the dead node's share), and all later routing
goes through :meth:`~repro.cluster.cluster.Cluster.serving_node`.  What a
run cannot complete is governed by ``EngineConfig.on_error``: ``fail``
aborts on the first fault, ``retry`` aborts when the retry budget is
exhausted, ``skip`` drops the failing work unit and records it in the
job's :class:`~repro.engine.metrics.FailureReport`.  Aborts are
cooperative — the failing unit parks the original exception, the task
tracker is force-finished so every process drains, and the job process
re-raises the exception so callers see the same propagation behaviour as a
direct raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.cluster.cluster import Cluster
from repro.cluster.simulation import Event, Resource, Store, any_of
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.functions import Dereferencer, Referencer
from repro.core.job import Job, OutputRow
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.access import (classify_failure, initial_probe_pids,
                                 recovering_dereference,
                                 recovering_dereference_batch,
                                 resolve_partitions, stamp_epoch,
                                 stamp_watermark)
from repro.engine.metrics import (ExecutionMetrics, FailureRecord,
                                  FailureReport, JobResult)
from repro.errors import ExecutionError, JobAborted, NodeCrashed

__all__ = ["JobHandle", "SmpeEngine"]

_SENTINEL = object()


@dataclass
class JobHandle:
    """Control handle over one submitted SMPE job.

    Returned by :meth:`SmpeEngine.submit_handle`; the serving gateway
    holds one per in-flight job.  ``completion`` is the job process's
    event; ``result`` fills in as the simulation advances.  ``error``
    carries the fatal exception of a job submitted with
    ``propagate_errors=False`` (instead of re-raising out of the
    simulation drive loop, which would take every concurrent job down
    with it).
    """

    job: Job
    completion: Event
    result: JobResult
    _engine: "SmpeEngine"
    _state: "_RunState"
    #: fatal exception of a non-propagating job, else None
    error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self.completion.triggered

    @property
    def cancelled(self) -> bool:
        return self.result.cancelled

    def cancel(self, reason: str = "cancelled by caller") -> bool:
        """Cooperatively abort the job; True if the cancel took effect.

        Reuses the abort machinery: the task tracker is force-finished so
        every dispatcher drains its queue without dispatching, in-flight
        dereferences stop at their next partition boundary (their retry
        loops abandon pending backoff), and the job completes with its
        partial rows and ``result.cancelled`` set — no exception
        propagates.  A no-op on a job that already finished.
        """
        if self.completion.triggered or self._state.cancelled:
            return False
        self.result.cancelled = True
        self._state.cancel_reason = reason
        self._engine._cancel(self._state)
        return True


@dataclass
class _StageInput:
    """One queue entry: Algorithm 1's ``input`` with its ``stage`` tag."""

    stage: int
    payload: Union[Record, Pointer, PointerRange]
    context: Mapping[str, Any]
    #: set after broadcast materialization (``SETPARTITION(input, LOCAL)``)
    local_only: bool = False
    #: logical node whose partition share this entry refers to; set when a
    #: crash re-routes the entry so LOCAL resolution still means "the dead
    #: node's partitions" on the adopting survivor
    home_node: Optional[int] = None


class _TaskTracker:
    """Counts in-flight stage inputs; fires ``done`` at zero.

    Guard tokens held by each node's initial stage prevent a transient zero
    before any outputs exist.  After the job finishes — naturally or via
    :meth:`force_finish` on abort — the tracker goes inert: late
    bookkeeping from draining processes is a no-op instead of an error.
    """

    def __init__(self, done: Event) -> None:
        self._count = 0
        self._done = done
        self._finished = False

    def inc(self, amount: int = 1) -> None:
        if self._finished:
            return
        self._count += amount

    def dec(self) -> None:
        if self._finished:
            return
        self._count -= 1
        if self._count < 0:
            raise ExecutionError("task tracker went negative")
        if self._count == 0:
            self._finished = True
            self._done.succeed()

    def force_finish(self) -> None:
        """Abort path: fire ``done`` now and ignore all later accounting."""
        if not self._finished:
            self._finished = True
            self._done.succeed()


class SmpeEngine:
    """ReDe's executor with SMPE enabled."""

    def __init__(self, cluster: Cluster, catalog: StructureCatalog,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.config = config

    def submit(self, job: Job,
               limit: Optional[int] = None) -> tuple[Event, JobResult]:
        """Launch ``job`` without driving the simulation.

        Returns ``(completion_event, result)``; the result's rows and
        metrics fill in as the simulation advances.  Multiple submitted
        jobs share the cluster's resources concurrently — the simulated
        equivalent of a multi-tenant engine — and are driven together
        with ``cluster.run_until(...)``.
        """
        handle = self.submit_handle(job, limit=limit)
        return handle.completion, handle.result

    def submit_handle(self, job: Job, limit: Optional[int] = None,
                      propagate_errors: bool = True) -> JobHandle:
        """Launch ``job`` and return a :class:`JobHandle` over it.

        Identical to :meth:`submit` plus control: the handle supports
        cooperative :meth:`~JobHandle.cancel`.  With
        ``propagate_errors=False`` a fatal failure does not re-raise out
        of the simulation loop; it lands on ``handle.error`` instead, so
        one tenant's failing job cannot crash a multi-job drive loop.
        """
        metrics = ExecutionMetrics()
        stamp_watermark(metrics, self.catalog)
        stamp_epoch(metrics, self.cluster)
        if self.config.trace:
            metrics.trace = []
        results: list[OutputRow] = []
        sim = self.cluster.sim
        done = sim.event()
        tracker = _TaskTracker(done)
        queues = [sim.store(name=f"queue[{n}]")
                  for n in range(self.cluster.num_nodes)]
        pools = [Resource(sim, self.config.thread_pool_size,
                          name=f"pool[{n}]")
                 for n in range(self.cluster.num_nodes)]
        state = _RunState(job, metrics, results, tracker, queues, pools,
                          FailureReport(), limit=limit,
                          propagate_errors=propagate_errors)
        start = sim.now
        busy_snaps = [node.disk.spindle_busy_snapshot()
                      for node in self.cluster.nodes]

        listener = None
        if (self.cluster.faults is not None
                or self.cluster.topology is not None):
            def listener(dead: int) -> None:
                self._on_node_crash(state, dead)
            self.cluster.on_node_crash(listener)

        result = JobResult(results, metrics, failure_report=state.failures)

        # EXECUTESMPE: "distributing the data processing job to all the
        # computing nodes" (lines 2-5), then wait (line 6).
        def job_process():
            node_procs = []
            for node_id in range(self.cluster.num_nodes):
                node_procs.append(self.cluster.launch(
                    self._node_main(state, node_id),
                    name=f"smpe-node{node_id}"))
            yield done
            # Job finished: unblock every dispatcher.
            for queue in queues:
                queue.put(_SENTINEL)
            yield sim.all_of(node_procs)
            if listener is not None:
                self.cluster.remove_crash_listener(listener)
            self._finalize(state, start, busy_snaps, pools)
            if state.aborted is not None:
                if not state.propagate_errors:
                    handle.error = state.aborted
                    return
                # Re-raise here so the original exception type propagates
                # out of run_until, exactly as a direct raise would.
                raise state.aborted

        completion = self.cluster.launch(job_process(),
                                         name=f"smpe:{job.name}")
        handle = JobHandle(job, completion, result, self, state)
        return handle

    def _finalize(self, state: "_RunState", start: float,
                  busy_snaps: list, pools: list) -> None:
        """Fill in the run-level metrics at completion time."""
        metrics = state.metrics
        end = self.cluster.sim.now
        metrics.elapsed_seconds = end - start
        metrics.peak_parallelism = sum(pool.max_in_use for pool in pools)
        if state.limit is not None and len(state.results) > state.limit:
            del state.results[state.limit:]
        if end > start:
            window = end - start
            metrics.disk_utilization = sum(
                (node.disk.spindle_busy_snapshot() - snap)
                / (node.disk.spindle_count * window)
                for node, snap in zip(self.cluster.nodes, busy_snaps)
            ) / self.cluster.num_nodes

    def execute(self, job: Job,
                max_time: Optional[float] = None,
                limit: Optional[int] = None) -> JobResult:
        """Run ``job`` to completion; with ``limit``, stop early once
        that many output rows exist (outstanding tasks are drained, not
        dispatched)."""
        completion, result = self.submit(job, limit=limit)
        self.cluster.run_until(
            completion, max_time=max_time or self.config.max_sim_time)
        return result

    # -- failure handling -------------------------------------------------

    def _abort(self, state: "_RunState", exc: BaseException) -> None:
        """Park ``exc`` as the job's outcome and start a cooperative
        shutdown; the first abort wins."""
        if state.aborted is None:
            state.aborted = exc
        state.cancelled = True
        state.tracker.force_finish()

    def _cancel(self, state: "_RunState") -> None:
        """Caller-requested cancellation: the same cooperative shutdown
        as an abort, but with no exception — the job completes with its
        partial rows and ``result.cancelled`` set."""
        state.cancelled = True
        state.tracker.force_finish()

    def _unit_failed(self, state: "_RunState", node_id: int, stage: int,
                     partition: Optional[int], exc: BaseException) -> None:
        """One work unit is beyond saving (retries exhausted, user code
        raised, or ``on_error='fail'``): apply the failure policy."""
        kind = classify_failure(exc)
        if self.config.on_error == "skip":
            state.metrics.tasks_skipped += 1
            state.failures.add(FailureRecord(
                stage=stage, node=node_id, partition=partition, kind=kind,
                error=str(exc), time=self.cluster.sim.now,
                attempts=1 if kind == "user-error"
                else self.config.max_retries + 1))
            return
        if kind == "user-error" or isinstance(exc, ExecutionError):
            # Application errors and already-wrapped exhaustion errors
            # propagate as themselves.
            self._abort(state, exc)
        else:
            aborted = JobAborted(
                f"job {state.job.name!r} aborted by {kind} fault on node "
                f"{node_id}: {exc}")
            aborted.__cause__ = exc
            self._abort(state, aborted)

    def _on_node_crash(self, state: "_RunState", dead: int) -> None:
        """Crash listener: hand the dead node's pending queue to the
        survivor that adopted its partitions and stop its dispatcher.

        Fires for true crashes and for planned drain retirements alike —
        the re-queue mechanics are identical; only the accounting
        differs (a drain is a topology event, not a lost node)."""
        if dead < len(self.cluster.nodes) and self.cluster.nodes[dead].retired:
            state.failures.note_topology(
                f"node {dead} retired by drain at "
                f"{self.cluster.sim.now * 1e3:.2f}ms; pending work "
                "re-queued to survivors")
        else:
            state.metrics.node_crashes += 1
        if dead >= len(state.queues):
            # A node that joined after this job was submitted has no
            # dispatcher here; nothing to re-queue.
            return
        try:
            adopter = self.cluster.serving_node(dead)
        except NodeCrashed as exc:
            self._abort(state, exc)
            return
        if adopter >= len(state.queues):
            # The partition adopter joined after this job was submitted
            # and runs no dispatcher here — re-queue onto an alive
            # launch-time node instead (storage routing still goes to
            # the true adopter via serving_node at dereference time).
            candidates = [n for n in range(len(state.queues))
                          if self.cluster.nodes[n].alive]
            if not candidates:
                self._abort(state, NodeCrashed(
                    "no launch-time node survives to adopt queue of node "
                    f"{dead}", node=dead))
                return
            adopter = candidates[0]
        for item in state.queues[dead].drain():
            if item is _SENTINEL:
                continue
            if item.home_node is None:
                item.home_node = dead
            state.queues[adopter].put(item)
        # Wake and retire the dead node's dispatcher; all later routing
        # avoids this queue via serving_node().
        state.queues[dead].put(_SENTINEL)

    # -- per-node execution (EXECUTESMPEEACH, lines 8-18) ----------------

    def _node_main(self, state: "_RunState", node_id: int):
        # Guard token: held until this node's initial stage has dispatched
        # everything it will ever dispatch.
        state.tracker.inc()
        sim = self.cluster.sim
        initial = self.cluster.launch(
            self._initial_stage(state, node_id),
            name=f"initial@{node_id}")                   # line 14 (on t1)
        dispatcher = self.cluster.launch(
            self._dispatcher(state, node_id),
            name=f"stages@{node_id}")                    # line 16 (on t2)
        yield initial
        state.tracker.dec()  # initial stage fully dispatched
        yield dispatcher                                  # line 17

    # -- initial stage (EXECUTEINITIALSTAGE, lines 19-24) ----------------

    def _initial_stage(self, state: "_RunState", node_id: int):
        """Run the initial dereferencer over this node's share of the job
        inputs.

        A broadcast input (no partition key) is served by every node
        against its local partitions; a keyed input only by the partition
        owner.  Each touched partition gets its own pool thread, so even
        stage 0 is parallel within a node.
        """
        job = state.job
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        probes: list[tuple[Any, int]] = []
        for target in job.inputs:                        # line 22 GETINPUT
            pids = initial_probe_pids(file, target, node_id)
            probes.extend((target, pid) for pid in pids)

        procs = []
        batch_size = self.config.batch_size
        if batch_size > 1:
            # Batched mode: same-partition targets share one dispatch.
            groups: dict[int, list[Any]] = {}
            for target, pid in probes:
                groups.setdefault(pid, []).append(target)
            for pid, targets in groups.items():
                for i in range(0, len(targets), batch_size):
                    chunk = targets[i:i + batch_size]
                    state.tracker.inc(len(chunk))
                    procs.append(self.cluster.launch(
                        self._initial_probe_batch(state, node_id, chunk,
                                                  pid),
                        name=f"deref0@{node_id}"))
        else:
            for target, pid in probes:
                state.tracker.inc()  # one in-flight unit per probe
                procs.append(self.cluster.launch(
                    self._initial_probe(state, node_id, target, pid),
                    name=f"deref0@{node_id}"))
        if procs:
            yield self.cluster.sim.all_of(procs)
        return None

    def _initial_probe(self, state: "_RunState", node_id: int,
                       target: Any, pid: int):
        pool = state.pools[node_id]
        yield pool.request()
        try:
            if state.cancelled:
                return
            dereferencer = state.job.functions[0]
            file = self.catalog.resolve(dereferencer.file_name)
            try:
                records = yield from recovering_dereference(
                    self.cluster, self.config, state.metrics, 0,
                    dereferencer, file, target, pid, node_id, {},
                    catalog=self.catalog, failures=state.failures,
                    runtime=state.recovery, abort_check=state.abort_check)
            except Exception as exc:
                self._unit_failed(state, node_id, 0, pid, exc)
                return
            for record in records:                       # lines 47-51
                self._enqueue(state, node_id,
                              _StageInput(1, record, {}))
        finally:
            pool.release()
            state.tracker.dec()

    def _initial_probe_batch(self, state: "_RunState", node_id: int,
                             targets: list, pid: int):
        """One batched stage-0 dispatch: every target probes ``pid``."""
        pool = state.pools[node_id]
        yield pool.request()
        try:
            if state.cancelled:
                return
            dereferencer = state.job.functions[0]
            file = self.catalog.resolve(dereferencer.file_name)
            probes = [(target, {}) for target in targets]
            try:
                outputs = yield from recovering_dereference_batch(
                    self.cluster, self.config, state.metrics, 0,
                    dereferencer, file, probes, pid, node_id,
                    catalog=self.catalog, failures=state.failures,
                    runtime=state.recovery, abort_check=state.abort_check)
            except Exception as exc:
                self._unit_failed(state, node_id, 0, pid, exc)
                return
            for records in outputs:
                for record in records:                   # lines 47-51
                    self._enqueue(state, node_id,
                                  _StageInput(1, record, {}))
        finally:
            pool.release()
            for __ in targets:
                state.tracker.dec()

    # -- the dispatcher (EXECUTESTAGES, lines 25-42) ---------------------

    def _dispatcher(self, state: "_RunState", node_id: int):
        queue = state.queues[node_id]
        job = state.job
        sim = self.cluster.sim
        batch_size = self.config.batch_size
        linger = self.config.batch_linger if batch_size > 1 else 0.0
        # Batched mode: dereferencer inputs buffer per stage and flush as
        # one dispatch when full — or as a partial batch the moment the
        # queue runs dry, so a buffered item never waits on a blocked
        # ``get()`` (the buffer holds task-tracker counts; parking them
        # behind a blocking dequeue would deadlock job completion).
        # With ``batch_linger`` set, a dry queue instead races the next
        # dequeue against an idle-tick timeout: more input within the
        # linger window keeps filling the buffers; the tick flushes them.
        buffers: dict[int, list[_StageInput]] = {}

        def flush(stage: Optional[int] = None) -> None:
            stages = [stage] if stage is not None else list(buffers)
            for s in stages:
                items = buffers.pop(s, None)
                if items:
                    self.cluster.launch(
                        self._execute_dereferencer_batch(
                            state, node_id, job.function_at(s), items),
                        name=f"deref-batch@{node_id}")

        while True:                                      # line 26
            if buffers and len(queue) == 0:
                if linger > 0:
                    # Idle tick: a pending ``get`` keeps its claim on the
                    # next put even if the timeout wins the race, so the
                    # same event is re-awaited after flushing.
                    pending = queue.get()
                    which, __ = yield any_of(
                        sim, [pending, sim.timeout(linger)])
                    if which == 1:
                        flush()
                    item = yield pending
                else:
                    flush()
                    item = yield queue.get()
            else:
                item = yield queue.get()                 # line 27 DEQUE
            if item is _SENTINEL:
                flush()
                return

            payload = item.payload
            if state.cancelled:
                # LIMIT reached or job aborted: drain without dispatching.
                state.tracker.dec()
                continue

            # Lines 28-33: a pointer without partition information is
            # replicated to all nodes' queues, marked LOCAL.  Each logical
            # node's share goes to whichever survivor currently serves it.
            if (isinstance(payload, (Pointer, PointerRange))
                    and payload.partition_key is None
                    and not item.local_only):
                # Broadcast covers the nodes the job launched with — a
                # node that joined mid-job holds no partition share of
                # this run, so its queue (which does not exist here)
                # would receive nothing anyway.
                for other in range(len(state.queues)):
                    state.tracker.inc()
                    state.queues[
                        self.cluster.serving_node(other)
                        % len(state.queues)].put(
                        _StageInput(item.stage, payload, item.context,
                                    local_only=True,
                                    home_node=other))    # line 31 BROADCAST
                state.tracker.dec()
                continue                                 # line 32

            function = job.function_at(item.stage)       # line 34
            if function is None:                         # lines 36-38
                # Past the final stage: the record is a job output.  (The
                # pseudocode drops it; a real engine keeps it.)
                if isinstance(payload, Record):
                    state.results.append(OutputRow(payload, item.context))
                    if (state.limit is not None
                            and len(state.results) >= state.limit):
                        state.cancelled = True
                state.tracker.dec()
                continue

            if isinstance(function, Referencer):
                if self.config.inline_referencers:
                    # Optimization: "ReDe does not switch threads for
                    # Referencers by default".
                    self._run_referencer_inline(state, node_id, function,
                                                item)
                else:
                    self.cluster.launch(
                        self._execute_referencer(state, node_id, function,
                                                 item),
                        name=f"ref@{node_id}")
            elif batch_size > 1:
                buffer = buffers.setdefault(item.stage, [])
                buffer.append(item)
                if len(buffer) >= batch_size:
                    flush(item.stage)
            else:
                # Line 39: "create if func is Dereferencer" — every
                # dereference invocation gets its own pooled thread.
                self.cluster.launch(
                    self._execute_dereferencer(state, node_id, function,
                                               item),
                    name=f"deref@{node_id}")

    # -- function execution (EXECUTEFUNC, lines 43-52) -------------------

    def _run_referencer_inline(self, state: "_RunState", node_id: int,
                               function: Referencer,
                               item: _StageInput) -> None:
        try:
            if not isinstance(item.payload, Record):
                raise ExecutionError(
                    f"stage {item.stage} expects records, got "
                    f"{type(item.payload).__name__}")
            state.metrics.count_invocation(item.stage)
            for pointer, context in function.reference(item.payload,
                                                       item.context):
                self._enqueue(state, node_id,
                              _StageInput(item.stage + 1, pointer, context))
        except Exception as exc:
            self._unit_failed(state, node_id, item.stage, None, exc)
        finally:
            # The unit is accounted for on every path — a raising
            # referencer must not strand the task tracker.
            state.tracker.dec()

    def _execute_referencer(self, state: "_RunState", node_id: int,
                            function: Referencer, item: _StageInput):
        pool = state.pools[node_id]
        yield pool.request()
        try:
            try:
                # Dispatching to a pool thread pays the context switch the
                # inline optimization avoids; a survivor pays it when the
                # home node has crashed.
                exec_node = self.cluster.serving_node(node_id)
                yield from self.cluster.node(exec_node).compute(
                    self.config.thread_switch_time)
            except NodeCrashed:
                pass  # crashed mid-switch: run the referencer regardless
            self._run_referencer_inline(state, node_id, function, item)
        finally:
            pool.release()

    def _execute_dereferencer(self, state: "_RunState", node_id: int,
                              function: Dereferencer, item: _StageInput):
        pool = state.pools[node_id]
        yield pool.request()                             # line 44
        try:
            if state.cancelled:
                return
            target = item.payload
            if not isinstance(target, (Pointer, PointerRange)):
                raise ExecutionError(
                    f"stage {item.stage} expects pointers, got "
                    f"{type(target).__name__}")
            file = self.catalog.resolve(function.file_name)
            # LOCAL resolution refers to the entry's logical home — after
            # a crash re-route that is the dead node's partition share.
            home = item.home_node if item.home_node is not None else node_id
            pids = resolve_partitions(file, target, executing_node=home,
                                      local_only=item.local_only)
            for pid in pids:
                if state.cancelled:
                    return
                try:
                    records = yield from recovering_dereference(  # line 45
                        self.cluster, self.config, state.metrics,
                        item.stage, function, file, target, pid, node_id,
                        item.context, catalog=self.catalog,
                        failures=state.failures, runtime=state.recovery,
                        abort_check=state.abort_check)
                except Exception as exc:
                    self._unit_failed(state, node_id, item.stage, pid, exc)
                    continue
                for record in records:                   # lines 47-51
                    self._enqueue(state, node_id, _StageInput(
                        item.stage + 1, record, item.context))
        except Exception as exc:
            self._unit_failed(state, node_id, item.stage, None, exc)
        finally:
            pool.release()
            state.tracker.dec()

    def _execute_dereferencer_batch(self, state: "_RunState", node_id: int,
                                    function: Dereferencer,
                                    items: list[_StageInput]):
        """One pooled thread serving a whole buffered batch.

        Targets resolve to partitions per item (a crash re-route or a
        LOCAL broadcast share changes resolution per entry), then group
        by partition; each group is one batched dereference, and each
        group is its own failure unit under ``on_error='skip'``."""
        pool = state.pools[node_id]
        stage = items[0].stage
        yield pool.request()                             # line 44
        try:
            if state.cancelled:
                return
            file = self.catalog.resolve(function.file_name)
            groups: dict[int, list[_StageInput]] = {}
            for item in items:
                target = item.payload
                if not isinstance(target, (Pointer, PointerRange)):
                    self._unit_failed(
                        state, node_id, stage, None, ExecutionError(
                            f"stage {stage} expects pointers, got "
                            f"{type(target).__name__}"))
                    continue
                home = (item.home_node if item.home_node is not None
                        else node_id)
                for pid in resolve_partitions(file, target,
                                              executing_node=home,
                                              local_only=item.local_only):
                    groups.setdefault(pid, []).append(item)
            for pid, group in groups.items():
                if state.cancelled:
                    return
                probes = [(item.payload, item.context) for item in group]
                try:
                    outputs = yield from recovering_dereference_batch(
                        self.cluster, self.config, state.metrics, stage,
                        function, file, probes, pid, node_id,
                        catalog=self.catalog, failures=state.failures,
                        runtime=state.recovery,
                        abort_check=state.abort_check)
                except Exception as exc:
                    self._unit_failed(state, node_id, stage, pid, exc)
                    continue
                for item, records in zip(group, outputs):
                    for record in records:               # lines 47-51
                        self._enqueue(state, node_id, _StageInput(
                            stage + 1, record, item.context))
        except Exception as exc:
            self._unit_failed(state, node_id, stage, None, exc)
        finally:
            pool.release()
            for __ in items:
                state.tracker.dec()

    # -- plumbing ---------------------------------------------------------

    def _enqueue(self, state: "_RunState", node_id: int,
                 item: _StageInput) -> None:
        """ENQUE(queue, new_input): register the task, then queue it on
        whichever node currently serves ``node_id``.

        The modulo folds a serving node that joined after this job was
        submitted (and so has no dispatcher in this run) back onto a
        launch-time queue; an identity on static membership."""
        state.tracker.inc()
        state.queues[self.cluster.serving_node(node_id)
                     % len(state.queues)].put(item)


@dataclass
class _RunState:
    """Everything one SMPE run shares across its simulated processes."""

    job: Job
    metrics: ExecutionMetrics
    results: list[OutputRow]
    tracker: _TaskTracker
    queues: list[Store]
    pools: list[Resource]
    failures: FailureReport = field(default_factory=FailureReport)
    #: LIMIT: stop dispatching once this many output rows exist
    limit: Optional[int] = None
    cancelled: bool = False
    #: first fatal exception; re-raised by the job process at completion
    aborted: Optional[BaseException] = None
    #: per-structure scan-recovery tables for quarantined structures
    recovery: dict = field(default_factory=dict)
    #: False: fatal errors land on the JobHandle instead of re-raising
    propagate_errors: bool = True
    #: why a caller cancelled the job, for the handle's bookkeeping
    cancel_reason: Optional[str] = None

    def abort_check(self) -> bool:
        """Consulted by retry loops: True once the run is winding down."""
        return self.cancelled
