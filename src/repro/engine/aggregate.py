"""Aggregation helpers over job results.

ReDe jobs produce record streams; the paper's case-study queries then
"calculate medical expenses" — an aggregation.  The prototype leaves
aggregation to the application (the paper's Q5′ even strips it from Q5 "to
focus on ... a SPJ workload"), so this module provides the small
schema-on-read aggregation toolkit an application needs on top of a
:class:`~repro.engine.metrics.JobResult`:

* :func:`group_by` — group output rows by interpreted/context fields;
* :func:`aggregate` — per-group sum/count/min/max/avg over a field;
* :func:`distinct_sum` — sum a field once per distinct entity (what the
  expenses queries need: a claim diagnosed twice still counts once).

Values come from the carried context first, then the interpreted record —
the same precedence as :meth:`OutputRow.project`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.interpreters import Interpreter
from repro.core.job import OutputRow
from repro.errors import ExecutionError

__all__ = ["group_by", "aggregate", "distinct_sum", "value_of"]

_AGGREGATES: dict[str, Callable[[list], Any]] = {
    "sum": sum,
    "count": len,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
}


def value_of(row: OutputRow, interpreter: Interpreter, field: str,
             default: Any = None) -> Any:
    """One field of an output row: context wins over the record view."""
    if field in row.context:
        return row.context[field]
    return interpreter.field(row.record, field, default)


def group_by(rows: Iterable[OutputRow], interpreter: Interpreter,
             fields: Sequence[str]) -> dict[tuple, list[OutputRow]]:
    """Group rows by a tuple of interpreted/context field values."""
    groups: dict[tuple, list[OutputRow]] = defaultdict(list)
    for row in rows:
        key = tuple(value_of(row, interpreter, field) for field in fields)
        groups[key].append(row)
    return dict(groups)


def aggregate(rows: Iterable[OutputRow], interpreter: Interpreter,
              group_fields: Sequence[str], value_field: Optional[str],
              how: str = "sum") -> dict[tuple, Any]:
    """Per-group aggregate of ``value_field``.

    ``how`` is one of sum/count/min/max/avg; ``count`` ignores
    ``value_field`` (pass None).  Rows whose value is None are skipped for
    value aggregates.
    """
    if how not in _AGGREGATES:
        raise ExecutionError(
            f"unknown aggregate {how!r}; expected one of "
            f"{sorted(_AGGREGATES)}")
    if how != "count" and value_field is None:
        raise ExecutionError(f"aggregate {how!r} needs a value_field")
    results: dict[tuple, Any] = {}
    for key, group in group_by(rows, interpreter, group_fields).items():
        if how == "count":
            results[key] = len(group)
            continue
        values = [value_of(row, interpreter, value_field)
                  for row in group]
        values = [v for v in values if v is not None]
        results[key] = _AGGREGATES[how](values) if values else None
    return results


def distinct_sum(rows: Iterable[OutputRow], interpreter: Interpreter,
                 entity_field: str, value_field: str) -> float:
    """Sum ``value_field`` once per distinct ``entity_field`` value.

    Index-driven jobs can surface the same entity several times (a claim
    diagnosed with two matching codes arrives twice); expense-style totals
    must count it once.
    """
    seen: set = set()
    total = 0.0
    for row in rows:
        entity = value_of(row, interpreter, entity_field)
        if entity is None or entity in seen:
            continue
        seen.add(entity)
        value = value_of(row, interpreter, value_field)
        if value is not None:
            total += value
    return total
