"""ReDe without SMPE: structures plus *partitioned* parallelism only.

Figure 7's middle line: "ReDe (w/o SMPE) simply used the created structures
and the partitioned parallelism given from data partitions".  Concretely:
one worker per node walks the Reference-Dereference chain depth-first and
*sequentially* — every dereference completes before the next begins — so
the only parallelism is the one-worker-per-node horizontal kind that
conventional data-lake engines already have.  Same structures, same IO
charges, same answers; the contrast with :class:`~repro.engine.smpe.
SmpeEngine` isolates the contribution of dynamic fine-grained parallelism.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from repro.cluster.cluster import Cluster
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.functions import Dereferencer, Referencer
from repro.core.job import Job, OutputRow
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.access import (initial_probe_pids, resolve_partitions,
                                 simulated_dereference)
from repro.engine.metrics import ExecutionMetrics, JobResult
from repro.errors import ExecutionError

__all__ = ["PartitionedEngine"]


class PartitionedEngine:
    """ReDe's executor with SMPE disabled (the paper's "w/o SMPE" line)."""

    def __init__(self, cluster: Cluster, catalog: StructureCatalog,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.config = config

    def execute(self, job: Job,
                max_time: Optional[float] = None,
                limit: Optional[int] = None) -> JobResult:
        metrics = ExecutionMetrics()
        self._limit = limit
        if self.config.trace:
            metrics.trace = []
        results: list[OutputRow] = []

        def job_process():
            workers = [self.cluster.launch(
                self._node_worker(job, metrics, results, node_id),
                name=f"part-node{node_id}")
                for node_id in range(self.cluster.num_nodes)]
            yield self.cluster.sim.all_of(workers)

        start = self.cluster.sim.now
        busy_snaps = [node.disk.spindle_busy_snapshot()
                      for node in self.cluster.nodes]
        __, elapsed = self.cluster.run_job(
            job_process(), name=f"partitioned:{job.name}",
            max_time=max_time or self.config.max_sim_time)
        metrics.elapsed_seconds = elapsed
        metrics.peak_parallelism = self.cluster.num_nodes
        if limit is not None and len(results) > limit:
            del results[limit:]
        end = self.cluster.sim.now
        if end > start:
            window = end - start
            metrics.disk_utilization = sum(
                (node.disk.spindle_busy_snapshot() - snap)
                / (node.disk.spindle_count * window)
                for node, snap in zip(self.cluster.nodes, busy_snaps)
            ) / self.cluster.num_nodes
        return JobResult(results, metrics)

    def _limit_reached(self, results: list[OutputRow]) -> bool:
        limit = getattr(self, "_limit", None)
        return limit is not None and len(results) >= limit

    def _node_worker(self, job: Job, metrics: ExecutionMetrics,
                     results: list[OutputRow], node_id: int):
        """One sequential pass over this node's share of the job inputs."""
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        for target in job.inputs:
            if self._limit_reached(results):
                return
            pids = initial_probe_pids(file, target, node_id)
            for pid in pids:
                records = yield from simulated_dereference(
                    self.cluster, self.config, metrics, 0, dereferencer,
                    file, target, pid, node_id, {})
                for record in records:
                    yield from self._chain(job, metrics, results, node_id,
                                           1, record, {})

    def _chain(self, job: Job, metrics: ExecutionMetrics,
               results: list[OutputRow], node_id: int, stage: int,
               payload: Union[Record, Pointer, PointerRange],
               context: Mapping[str, Any]):
        """Depth-first, strictly sequential continuation of one item."""
        if self._limit_reached(results):
            return
        function = job.function_at(stage)
        if function is None:
            if isinstance(payload, Record):
                results.append(OutputRow(payload, context))
            return

        if isinstance(function, Referencer):
            if not isinstance(payload, Record):
                raise ExecutionError(
                    f"stage {stage} expects records, got "
                    f"{type(payload).__name__}")
            metrics.count_invocation(stage)
            for pointer, new_context in function.reference(payload, context):
                yield from self._chain(job, metrics, results, node_id,
                                       stage + 1, pointer, new_context)
            return

        if not isinstance(payload, (Pointer, PointerRange)):
            raise ExecutionError(
                f"stage {stage} expects pointers, got "
                f"{type(payload).__name__}")
        file = self.catalog.resolve(function.file_name)
        if payload.partition_key is None:
            # Without SMPE there is no cross-node task shipping: a broadcast
            # target is probed from here, partition by partition.
            pids = list(range(file.num_partitions))
        else:
            pids = resolve_partitions(file, payload)
        for pid in pids:
            records = yield from simulated_dereference(
                self.cluster, self.config, metrics, stage, function, file,
                payload, pid, node_id, context)
            for record in records:
                yield from self._chain(job, metrics, results, node_id,
                                       stage + 1, record, context)
