"""ReDe without SMPE: structures plus *partitioned* parallelism only.

Figure 7's middle line: "ReDe (w/o SMPE) simply used the created structures
and the partitioned parallelism given from data partitions".  Concretely:
one worker per node walks the Reference-Dereference chain depth-first and
*sequentially* — every dereference completes before the next begins — so
the only parallelism is the one-worker-per-node horizontal kind that
conventional data-lake engines already have.  Same structures, same IO
charges, same answers; the contrast with :class:`~repro.engine.smpe.
SmpeEngine` isolates the contribution of dynamic fine-grained parallelism.

Fault tolerance mirrors the SMPE engine: every dereference goes through
:func:`~repro.engine.access.resilient_dereference` (retry/backoff,
timeouts, crash re-routing via replica promotion), and
``EngineConfig.on_error`` decides whether an unsalvageable unit aborts the
job or is dropped into the :class:`~repro.engine.metrics.FailureReport`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from repro.cluster.cluster import Cluster
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.functions import Dereferencer, Referencer
from repro.core.job import Job, OutputRow
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.access import (classify_failure, initial_probe_pids,
                                 recovering_dereference,
                                 recovering_dereference_batch,
                                 resolve_partitions, stamp_epoch,
                                 stamp_watermark)
from repro.engine.metrics import (ExecutionMetrics, FailureRecord,
                                  FailureReport, JobResult)
from repro.errors import ExecutionError, JobAborted

__all__ = ["PartitionedEngine"]


class PartitionedEngine:
    """ReDe's executor with SMPE disabled (the paper's "w/o SMPE" line)."""

    def __init__(self, cluster: Cluster, catalog: StructureCatalog,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.config = config

    def execute(self, job: Job,
                max_time: Optional[float] = None,
                limit: Optional[int] = None) -> JobResult:
        metrics = ExecutionMetrics()
        stamp_watermark(metrics, self.catalog)
        stamp_epoch(metrics, self.cluster)
        self._limit = limit
        self._recovery: dict = {}
        if self.config.trace:
            metrics.trace = []
        results: list[OutputRow] = []
        failures = FailureReport()

        worker = (self._node_worker_batched if self.config.batch_size > 1
                  else self._node_worker)

        def job_process():
            workers = [self.cluster.launch(
                worker(job, metrics, failures, results, node_id),
                name=f"part-node{node_id}")
                for node_id in range(self.cluster.num_nodes)]
            yield self.cluster.sim.all_of(workers)

        start = self.cluster.sim.now
        busy_snaps = [node.disk.spindle_busy_snapshot()
                      for node in self.cluster.nodes]
        listener = None
        if (self.cluster.faults is not None
                or self.cluster.topology is not None):
            def listener(dead: int) -> None:
                nodes = self.cluster.nodes
                if dead < len(nodes) and nodes[dead].retired:
                    failures.note_topology(
                        f"node {dead} retired by drain at "
                        f"{self.cluster.sim.now * 1e3:.2f}ms; later "
                        "dereferences re-route to survivors")
                else:
                    metrics.node_crashes += 1
            self.cluster.on_node_crash(listener)
        try:
            __, elapsed = self.cluster.run_job(
                job_process(), name=f"partitioned:{job.name}",
                max_time=max_time or self.config.max_sim_time)
        finally:
            if listener is not None:
                self.cluster.remove_crash_listener(listener)
        metrics.elapsed_seconds = elapsed
        metrics.peak_parallelism = self.cluster.num_nodes
        if limit is not None and len(results) > limit:
            del results[limit:]
        end = self.cluster.sim.now
        if end > start:
            window = end - start
            metrics.disk_utilization = sum(
                (node.disk.spindle_busy_snapshot() - snap)
                / (node.disk.spindle_count * window)
                for node, snap in zip(self.cluster.nodes, busy_snaps)
            ) / self.cluster.num_nodes
        return JobResult(results, metrics, failure_report=failures)

    def _limit_reached(self, results: list[OutputRow]) -> bool:
        limit = getattr(self, "_limit", None)
        return limit is not None and len(results) >= limit

    def _deref(self, metrics: ExecutionMetrics, failures: FailureReport,
               stage: int, function: Dereferencer, file, target, pid: int,
               node_id: int, context: Mapping[str, Any]):
        """One policy-governed dereference; returns ``[]`` for a unit
        dropped under ``on_error='skip'``."""
        try:
            records = yield from recovering_dereference(
                self.cluster, self.config, metrics, stage, function, file,
                target, pid, node_id, context, catalog=self.catalog,
                failures=failures,
                runtime=getattr(self, "_recovery", None))
        except Exception as exc:
            kind = classify_failure(exc)
            if self.config.on_error == "skip":
                metrics.tasks_skipped += 1
                failures.add(FailureRecord(
                    stage=stage, node=node_id, partition=pid, kind=kind,
                    error=str(exc), time=self.cluster.sim.now,
                    attempts=1 if kind == "user-error"
                    else self.config.max_retries + 1))
                return []
            if kind == "user-error" or isinstance(exc, ExecutionError):
                raise
            raise JobAborted(
                f"job aborted by {kind} fault on node {node_id}: "
                f"{exc}") from exc
        return records

    def _node_worker(self, job: Job, metrics: ExecutionMetrics,
                     failures: FailureReport, results: list[OutputRow],
                     node_id: int):
        """One sequential pass over this node's share of the job inputs."""
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        for target in job.inputs:
            if self._limit_reached(results):
                return
            pids = initial_probe_pids(file, target, node_id)
            for pid in pids:
                records = yield from self._deref(
                    metrics, failures, 0, dereferencer, file, target, pid,
                    node_id, {})
                for record in records:
                    yield from self._chain(job, metrics, failures, results,
                                           node_id, 1, record, {})

    def _chain(self, job: Job, metrics: ExecutionMetrics,
               failures: FailureReport, results: list[OutputRow],
               node_id: int, stage: int,
               payload: Union[Record, Pointer, PointerRange],
               context: Mapping[str, Any]):
        """Depth-first, strictly sequential continuation of one item."""
        if self._limit_reached(results):
            return
        function = job.function_at(stage)
        if function is None:
            if isinstance(payload, Record):
                results.append(OutputRow(payload, context))
            return

        if isinstance(function, Referencer):
            if not isinstance(payload, Record):
                raise ExecutionError(
                    f"stage {stage} expects records, got "
                    f"{type(payload).__name__}")
            metrics.count_invocation(stage)
            for pointer, new_context in function.reference(payload, context):
                yield from self._chain(job, metrics, failures, results,
                                       node_id, stage + 1, pointer,
                                       new_context)
            return

        if not isinstance(payload, (Pointer, PointerRange)):
            raise ExecutionError(
                f"stage {stage} expects pointers, got "
                f"{type(payload).__name__}")
        file = self.catalog.resolve(function.file_name)
        if payload.partition_key is None:
            # Without SMPE there is no cross-node task shipping: a broadcast
            # target is probed from here, partition by partition.
            pids = list(range(file.num_partitions))
        else:
            pids = resolve_partitions(file, payload)
        for pid in pids:
            records = yield from self._deref(
                metrics, failures, stage, function, file, payload, pid,
                node_id, context)
            for record in records:
                yield from self._chain(job, metrics, failures, results,
                                       node_id, stage + 1, record, context)

    # -- batched mode (batch_size > 1) -----------------------------------

    def _deref_batch(self, metrics: ExecutionMetrics,
                     failures: FailureReport, stage: int,
                     function: Dereferencer, file, probes, pid: int,
                     node_id: int):
        """One policy-governed batched dereference.  The batch is the
        failure unit too: under ``on_error='skip'`` an unsalvageable
        batch drops as one recorded work unit (every probe empty)."""
        try:
            outputs = yield from recovering_dereference_batch(
                self.cluster, self.config, metrics, stage, function, file,
                probes, pid, node_id, catalog=self.catalog,
                failures=failures,
                runtime=getattr(self, "_recovery", None))
        except Exception as exc:
            kind = classify_failure(exc)
            if self.config.on_error == "skip":
                metrics.tasks_skipped += 1
                failures.add(FailureRecord(
                    stage=stage, node=node_id, partition=pid, kind=kind,
                    error=str(exc), time=self.cluster.sim.now,
                    attempts=1 if kind == "user-error"
                    else self.config.max_retries + 1))
                return [[] for __ in probes]
            if kind == "user-error" or isinstance(exc, ExecutionError):
                raise
            raise JobAborted(
                f"job aborted by {kind} fault on node {node_id}: "
                f"{exc}") from exc
        return outputs

    def _node_worker_batched(self, job: Job, metrics: ExecutionMetrics,
                             failures: FailureReport,
                             results: list[OutputRow], node_id: int):
        """Breadth-first batched pass over this node's share of the job.

        Same stage semantics as the depth-first worker — dereferences
        still run one after another on this node (no SMPE) — but each
        dereference carries up to ``batch_size`` same-partition targets,
        so the per-batch charging rules apply."""
        batch_size = self.config.batch_size
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        groups: dict[int, list] = {}
        for target in job.inputs:
            for pid in initial_probe_pids(file, target, node_id):
                groups.setdefault(pid, []).append((target, {}))
        frontier: list = []
        for pid, probes in groups.items():
            if self._limit_reached(results):
                return
            for i in range(0, len(probes), batch_size):
                chunk = probes[i:i + batch_size]
                outputs = yield from self._deref_batch(
                    metrics, failures, 0, dereferencer, file, chunk, pid,
                    node_id)
                for (__, context), records in zip(chunk, outputs):
                    frontier.extend((record, context) for record in records)

        stage = 1
        while frontier and not self._limit_reached(results):
            function = job.function_at(stage)
            if function is None:
                results.extend(OutputRow(payload, context)
                               for payload, context in frontier
                               if isinstance(payload, Record))
                return
            if isinstance(function, Referencer):
                next_frontier: list = []
                for payload, context in frontier:
                    if not isinstance(payload, Record):
                        raise ExecutionError(
                            f"stage {stage} expects records, got "
                            f"{type(payload).__name__}")
                    metrics.count_invocation(stage)
                    next_frontier.extend(function.reference(payload,
                                                            context))
                frontier = next_frontier
                stage += 1
                continue
            if not all(isinstance(payload, (Pointer, PointerRange))
                       for payload, __ in frontier):
                raise ExecutionError(
                    f"stage {stage} expects pointers")
            file = self.catalog.resolve(function.file_name)
            groups = {}
            for payload, context in frontier:
                if payload.partition_key is None:
                    # No cross-node task shipping without SMPE: broadcast
                    # targets are probed from here, partition by partition.
                    pids = list(range(file.num_partitions))
                else:
                    pids = resolve_partitions(file, payload)
                for pid in pids:
                    groups.setdefault(pid, []).append((payload, context))
            frontier = []
            for pid, probes in groups.items():
                if self._limit_reached(results):
                    return
                for i in range(0, len(probes), batch_size):
                    chunk = probes[i:i + batch_size]
                    outputs = yield from self._deref_batch(
                        metrics, failures, stage, function, file, chunk,
                        pid, node_id)
                    for (__, context), records in zip(chunk, outputs):
                        frontier.extend((record, context)
                                        for record in records)
            stage += 1
