"""Execution engines: SMPE (Algorithm 1), partitioned (w/o SMPE), and the
in-memory reference oracle, plus execution metrics."""

from repro.engine.aggregate import aggregate, distinct_sum, group_by
from repro.engine.executor import ReDeExecutor
from repro.engine.hybrid import CostModel, HybridExecutor, HybridResult, \
    PlanChoice
from repro.engine.metrics import (ExecutionMetrics, FailureRecord,
                                  FailureReport, JobResult)
from repro.engine.partitioned import PartitionedEngine
from repro.engine.planned import PlannedResult, PlanningExecutor
from repro.engine.reference import ReferenceExecutor
from repro.engine.smpe import JobHandle, SmpeEngine

__all__ = [
    "aggregate",
    "distinct_sum",
    "group_by",
    "ReDeExecutor",
    "CostModel",
    "HybridExecutor",
    "HybridResult",
    "PlanChoice",
    "ExecutionMetrics",
    "FailureRecord",
    "FailureReport",
    "JobResult",
    "JobHandle",
    "PartitionedEngine",
    "PlannedResult",
    "PlanningExecutor",
    "ReferenceExecutor",
    "SmpeEngine",
]
