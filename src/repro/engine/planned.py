"""The per-stage planning executor: run whatever the StagePlanner picked.

Where :class:`repro.engine.hybrid.HybridExecutor` chooses between two
whole-query plans, :class:`PlanningExecutor` accepts a
:class:`~repro.plan.logical.LogicalPlan`, asks the
:class:`~repro.plan.planner.StagePlanner` to price every stage, and runs
the winner:

* ``"mixed"`` / ``"index"`` — lower the physical plan to a Job and run it
  on a cluster engine (scan-backed stages ride inside the job as
  :class:`~repro.plan.scanstage.ScanLookupDereferencer` stages, so one
  execution interleaves sequential scans with index dereferences);
* ``"scan"`` — hand the degenerate operator tree to the scan baseline.

``force`` bypasses the decision (benchmarks measure all sides with it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.scan_engine import ScanEngine
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.job import Job
from repro.errors import ExecutionError, JobDefinitionError
from repro.plan.logical import LogicalPlan
from repro.plan.planner import PlannedQuery, StagePlanner, initial_cardinality
from repro.storage.blockstore import BlockStore

__all__ = ["PlannedResult", "PlanningExecutor"]


@dataclass
class PlannedResult:
    """Outcome of executing a planned query."""

    planned: PlannedQuery
    #: which plan actually ran ("mixed" | "index" | "scan"); differs from
    #: ``planned.chosen`` only under ``force``
    executed: str
    rows: list
    elapsed_seconds: float
    record_accesses: int  # 0 for scan-engine executions


class PlanningExecutor:
    """Plan a logical chain per stage, then execute the chosen plan."""

    def __init__(self, catalog: StructureCatalog, store: BlockStore,
                 cluster_spec: ClusterSpec,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 per_match_access_factor: Optional[float] = None,
                 statistics: str = "exact",
                 margin: float = 0.9,
                 mode: str = "smpe") -> None:
        self.catalog = catalog
        self.store = store
        self.cluster_spec = cluster_spec
        self.config = config
        self.per_match_access_factor = per_match_access_factor
        self.mode = mode
        self.planner = StagePlanner(catalog, store, cluster_spec,
                                    config=config, statistics=statistics,
                                    margin=margin)

    def calibrate(self, logical: LogicalPlan) -> float:
        """Set the whole-job access factor from one observed reference run.

        Same feedback loop as :meth:`HybridExecutor.calibrate
        <repro.engine.hybrid.HybridExecutor.calibrate>`: run the all-index
        job on the simulation-free oracle, measure actual record accesses
        per initial match, and install that factor for the whole-job index
        estimate (per-stage estimates keep their own statistics).
        """
        from repro.engine.reference import ReferenceExecutor
        from repro.plan.lowering import compile_logical

        job = compile_logical(logical, self.catalog).to_job(self.catalog)
        result = ReferenceExecutor(self.catalog).execute(job)
        cardinality = max(1.0, float(initial_cardinality(
            self.catalog, job.inputs, self.planner.statistics,
            self.planner._histograms, self.planner.histogram_buckets)))
        self.per_match_access_factor = (result.metrics.record_accesses
                                        / cardinality)
        return self.per_match_access_factor

    def plan(self, logical: LogicalPlan) -> PlannedQuery:
        """Price every stage and decide mixed vs index vs scan."""
        return self.planner.plan(
            logical, per_match_access_factor=self.per_match_access_factor)

    def serving_jobs(self, logical: LogicalPlan) -> tuple[Job, Optional[Job]]:
        """Plan ``logical`` for gateway submission: ``(primary, fallback)``.

        ``primary`` is the planner's cluster-executable pick lowered to a
        Job — the all-index plan when the choice was ``"index"``, else the
        mixed plan (a ``"scan"`` choice also lowers to mixed: the gateway
        needs a cluster job, and mixed is the cheapest one).  ``fallback``
        is the scan-free all-index job the gateway degrades to under
        overload — scan-backed stages are what saturate the disks, so the
        index-only variant is the load-shedding-friendly shape.  It is
        None when the primary is already scan-free (nothing cheaper to
        degrade to).
        """
        planned = self.plan(logical)
        physical = (planned.all_index if planned.chosen == "index"
                    else planned.mixed)
        primary = physical.to_job(self.catalog)
        if physical.is_pure_index:
            return primary, None
        return primary, planned.all_index.to_job(self.catalog)

    def execute(self, logical: LogicalPlan,
                force: Optional[str] = None) -> PlannedResult:
        """Plan then run; ``force`` in {"mixed", "index", "scan"} bypasses
        the decision."""
        planned = self.plan(logical)
        executed = force or planned.chosen
        if executed not in ("mixed", "index", "scan"):
            raise ExecutionError(
                f"force must be mixed|index|scan, got {executed!r}")
        if executed == "scan":
            if planned.scan_plan is None:
                raise JobDefinitionError(
                    f"chain {logical.name!r} has no scan-engine "
                    "equivalent (see plan.lowering.to_scan_plan)")
            engine = ScanEngine(Cluster(self.cluster_spec), self.store)
            result = engine.execute(planned.scan_plan)
            return PlannedResult(planned, executed, result.rows,
                                 result.metrics.elapsed_seconds, 0)
        physical = planned.mixed if executed == "mixed" else planned.all_index
        job = physical.to_job(self.catalog)
        from repro.engine.executor import ReDeExecutor

        executor = ReDeExecutor(Cluster(self.cluster_spec), self.catalog,
                                config=self.config, mode=self.mode)
        result = executor.execute(job)
        return PlannedResult(planned, executed, result.rows,
                             result.metrics.elapsed_seconds,
                             result.metrics.record_accesses)
