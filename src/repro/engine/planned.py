"""The per-stage planning executor: run whatever the StagePlanner picked.

Where :class:`repro.engine.hybrid.HybridExecutor` chooses between two
whole-query plans, :class:`PlanningExecutor` accepts a
:class:`~repro.plan.logical.LogicalPlan`, asks the
:class:`~repro.plan.planner.StagePlanner` to price every stage, and runs
the winner:

* ``"mixed"`` / ``"index"`` — lower the physical plan to a Job and run it
  on a cluster engine (scan-backed stages ride inside the job as
  :class:`~repro.plan.scanstage.ScanLookupDereferencer` stages, so one
  execution interleaves sequential scans with index dereferences);
* ``"scan"`` — hand the degenerate operator tree to the scan baseline.

``force`` bypasses the decision (benchmarks measure all sides with it).

Planning is memoized on ``(logical signature, lake state)``: repeated
plans (and calibrations) of the same chain against an unchanged lake
reuse the previous answer instead of re-scanning the catalog for
statistics — any data-plane mutation (ingest commit, compaction, build,
rebalance) bumps the catalog version and drops the memo.

With ``adaptive_threshold`` set, executions attach an
:class:`~repro.plan.feedback.AdaptiveController` through
``EngineConfig.feedback``: stages report observed cardinalities as they
run, and a stage whose output exceeds its estimate by the threshold
factor re-prices the remaining stages and switches them to scan-backed
access mid-query.  ``None`` (the default) runs exactly the static plan.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.baselines.scan_engine import ScanEngine
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.job import Job
from repro.errors import ExecutionError, JobDefinitionError
from repro.plan.feedback import AdaptiveController, logical_signature
from repro.plan.logical import LogicalPlan
from repro.plan.planner import PlannedQuery, StagePlanner, initial_cardinality
from repro.storage.blockstore import BlockStore

__all__ = ["PlannedResult", "PlanningExecutor"]


@dataclass
class PlannedResult:
    """Outcome of executing a planned query."""

    planned: PlannedQuery
    #: which plan actually ran ("mixed" | "index" | "scan"); differs from
    #: ``planned.chosen`` only under ``force``
    executed: str
    rows: list
    elapsed_seconds: float
    record_accesses: int  # 0 for scan-engine executions
    #: the AdaptiveController of an adaptive run (its observed counts and
    #: switch events); None for static executions
    adaptive: Optional[Any] = None


class PlanningExecutor:
    """Plan a logical chain per stage, then execute the chosen plan."""

    def __init__(self, catalog: StructureCatalog, store: BlockStore,
                 cluster_spec: ClusterSpec,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 per_match_access_factor: Optional[float] = None,
                 statistics: str = "exact",
                 margin: float = 0.9,
                 mode: str = "smpe",
                 adaptive_threshold: Optional[float] = None) -> None:
        self.catalog = catalog
        self.store = store
        self.cluster_spec = cluster_spec
        self.config = config
        self.per_match_access_factor = per_match_access_factor
        self.mode = mode
        self.adaptive_threshold = adaptive_threshold
        self.planner = StagePlanner(catalog, store, cluster_spec,
                                    config=config, statistics=statistics,
                                    margin=margin)
        #: oracle runs actually executed by :meth:`calibrate` (memo
        #: hits don't re-run — the satellite-3 regression contract)
        self.calibration_runs = 0
        self._plan_memo: dict[tuple, PlannedQuery] = {}
        self._calibration_memo: dict[tuple, float] = {}

    def _lake_token(self) -> tuple:
        """Fingerprint of the lake state the memoized plans are valid
        for.  The catalog version covers every data-plane mutation
        (registration, builds, ingest commits, compaction, demotion);
        the topology epoch covers placement changes."""
        topology = self.planner.topology
        epoch = None if topology is None else topology.epoch
        return (self.catalog.version, epoch)

    def calibrate(self, logical: LogicalPlan) -> float:
        """Set the whole-job access factor from one observed reference run.

        Same feedback loop as :meth:`HybridExecutor.calibrate
        <repro.engine.hybrid.HybridExecutor.calibrate>`: run the all-index
        job on the simulation-free oracle, measure actual record accesses
        per initial match, and install that factor for the whole-job index
        estimate (per-stage estimates keep their own statistics).

        Calibrating the same chain against an unchanged lake reuses the
        previous factor without re-running the oracle.
        """
        key = (logical_signature(logical), self._lake_token())
        cached = self._calibration_memo.get(key)
        if cached is not None:
            self.per_match_access_factor = cached
            return cached
        from repro.engine.reference import ReferenceExecutor
        from repro.plan.lowering import compile_logical

        job = compile_logical(logical, self.catalog).to_job(self.catalog)
        result = ReferenceExecutor(self.catalog).execute(job)
        self.calibration_runs += 1
        cardinality = max(1.0, float(initial_cardinality(
            self.catalog, job.inputs, self.planner.statistics,
            self.planner._histograms, self.planner.histogram_buckets)))
        self.per_match_access_factor = (result.metrics.record_accesses
                                        / cardinality)
        self._calibration_memo[key] = self.per_match_access_factor
        return self.per_match_access_factor

    def plan(self, logical: LogicalPlan) -> PlannedQuery:
        """Price every stage and decide mixed vs index vs scan.

        Memoized: the same logical signature against the same lake token
        (and access factor) returns the previously planned query."""
        token = self._lake_token()
        self.planner.note_lake_state(token)
        key = (logical_signature(logical), token,
               self.per_match_access_factor)
        planned = self._plan_memo.get(key)
        if planned is None:
            planned = self.planner.plan(
                logical,
                per_match_access_factor=self.per_match_access_factor)
            self._plan_memo[key] = planned
        return planned

    def serving_jobs(self, logical: LogicalPlan) -> tuple[Job, Optional[Job]]:
        """Plan ``logical`` for gateway submission: ``(primary, fallback)``.

        ``primary`` is the planner's cluster-executable pick lowered to a
        Job — the all-index plan when the choice was ``"index"``, else the
        mixed plan (a ``"scan"`` choice also lowers to mixed: the gateway
        needs a cluster job, and mixed is the cheapest one).  ``fallback``
        is the scan-free all-index job the gateway degrades to under
        overload — scan-backed stages are what saturate the disks, so the
        index-only variant is the load-shedding-friendly shape.  It is
        None when the primary is already scan-free (nothing cheaper to
        degrade to).
        """
        planned = self.plan(logical)
        physical = (planned.all_index if planned.chosen == "index"
                    else planned.mixed)
        primary = physical.to_job(self.catalog)
        if physical.is_pure_index:
            return primary, None
        return primary, planned.all_index.to_job(self.catalog)

    def execute(self, logical: LogicalPlan,
                force: Optional[str] = None) -> PlannedResult:
        """Plan then run; ``force`` in {"mixed", "index", "scan"} bypasses
        the decision."""
        planned = self.plan(logical)
        executed = force or planned.chosen
        if executed not in ("mixed", "index", "scan"):
            raise ExecutionError(
                f"force must be mixed|index|scan, got {executed!r}")
        if executed == "scan":
            if planned.scan_plan is None:
                raise JobDefinitionError(
                    f"chain {logical.name!r} has no scan-engine "
                    "equivalent (see plan.lowering.to_scan_plan)")
            engine = ScanEngine(Cluster(self.cluster_spec), self.store)
            result = engine.execute(planned.scan_plan)
            return PlannedResult(planned, executed, result.rows,
                                 result.metrics.elapsed_seconds, 0)
        physical = planned.mixed if executed == "mixed" else planned.all_index
        job = physical.to_job(self.catalog)
        config = self.config
        controller: Optional[AdaptiveController] = None
        if self.adaptive_threshold is not None:
            controller = AdaptiveController(
                self.planner, physical, job, planned.stage_estimates,
                threshold=self.adaptive_threshold)
            config = replace(config, feedback=controller)
        from repro.engine.executor import ReDeExecutor

        executor = ReDeExecutor(Cluster(self.cluster_spec), self.catalog,
                                config=config, mode=self.mode)
        result = executor.execute(job)
        return PlannedResult(planned, executed, result.rows,
                             result.metrics.elapsed_seconds,
                             result.metrics.record_accesses,
                             adaptive=controller)
