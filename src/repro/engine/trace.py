"""Execution tracing: per-dereference event records and overlap analysis.

Figures 5/6 of the paper are *timelines*: the whole point of SMPE is that
dereference operations overlap massively instead of running back-to-back.
With ``EngineConfig(trace=True)`` the engines record one
:class:`TraceEvent` per dereference IO (virtual start/end time, node,
stage, partition, result count), and this module provides the analysis
used by tests, benchmarks, and the timeline example:

* :func:`max_overlap` — peak number of concurrent dereferences;
* :func:`concurrency_timeline` — binned concurrency series for plotting;
* :func:`stage_spans` — per-stage first-start/last-end, showing pipeline
  overlap between stages (stage N starts long before stage N-1 ends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["TraceEvent", "max_overlap", "concurrency_timeline",
           "stage_spans", "render_timeline"]


@dataclass(frozen=True)
class TraceEvent:
    """One dereference IO (or fault/retry occurrence), in virtual time.

    ``kind`` is ``"deref"`` for ordinary dereference IOs; the resilience
    layer appends zero-duration markers with kinds like
    ``"fault:transient-io"``, ``"fault:timeout"``, ``"fault:node-crash"``,
    and ``"retry"`` so fault timelines can be analysed next to the IO
    timeline they perturb.
    """

    stage: int
    node: int
    partition: int
    owner_node: int
    num_records: int
    start: float
    end: float
    kind: str = "deref"
    #: buffer-pool pages served from RAM during this dereference
    cache_hits: int = 0
    #: buffer-pool pages that had to go to disk during this dereference
    cache_misses: int = 0
    #: probes dispatched in this event (1 on the per-record path; >1 when
    #: the batched funnel grouped same-(file, partition) targets)
    batch_size: int = 1

    @property
    def remote(self) -> bool:
        return self.node != self.owner_node

    @property
    def duration(self) -> float:
        return self.end - self.start


def max_overlap(events: Iterable[TraceEvent]) -> int:
    """Peak number of simultaneously in-flight dereferences."""
    boundaries: list[tuple[float, int]] = []
    for event in events:
        boundaries.append((event.start, 1))
        boundaries.append((event.end, -1))
    # Ends sort before starts at the same instant (-1 < 1), so touching
    # intervals do not count as overlapping.
    boundaries.sort()
    current = peak = 0
    for __, delta in boundaries:
        current += delta
        peak = max(peak, current)
    return peak


def concurrency_timeline(events: Sequence[TraceEvent],
                         num_bins: int = 40) -> list[tuple[float, float]]:
    """``(bin_start_time, mean_concurrency)`` pairs across the run."""
    if not events:
        return []
    start = min(e.start for e in events)
    end = max(e.end for e in events)
    if end <= start:
        return [(start, float(len(events)))]
    width = (end - start) / num_bins
    bins = [0.0] * num_bins
    for event in events:
        first = int((event.start - start) / width)
        last = min(num_bins - 1, int((event.end - start) / width))
        for b in range(first, last + 1):
            bin_start = start + b * width
            bin_end = bin_start + width
            covered = min(event.end, bin_end) - max(event.start, bin_start)
            if covered > 0:
                bins[b] += covered / width
    return [(start + b * width, bins[b]) for b in range(num_bins)]


def stage_spans(events: Iterable[TraceEvent]
                ) -> dict[int, tuple[float, float]]:
    """Per stage: (first start, last end) — adjacent spans overlapping is
    the pipeline parallelism of the Fig. 6 execution model."""
    spans: dict[int, tuple[float, float]] = {}
    for event in events:
        if event.stage in spans:
            lo, hi = spans[event.stage]
            spans[event.stage] = (min(lo, event.start),
                                  max(hi, event.end))
        else:
            spans[event.stage] = (event.start, event.end)
    return spans


def render_timeline(events: Sequence[TraceEvent], num_bins: int = 40,
                    width: int = 50) -> str:
    """ASCII concurrency chart (one row per bin) for terminal output."""
    timeline = concurrency_timeline(events, num_bins=num_bins)
    if not timeline:
        return "(no events)"
    peak = max(concurrency for __, concurrency in timeline) or 1.0
    lines = []
    for bin_start, concurrency in timeline:
        bar = "#" * max(0, round(concurrency / peak * width))
        lines.append(f"{bin_start * 1e3:9.2f}ms |{bar:<{width}}| "
                     f"{concurrency:6.1f}")
    lines.append(f"{'':>11} peak concurrency: {max_overlap(events)} "
                 f"in-flight dereferences")
    return "\n".join(lines)
