"""Execution metrics and the job-result container.

``record_accesses`` is the headline number: Figure 9 of the paper compares
"the number of record accesses" between engines, because "the number of
record accesses determines the theoretical limitation of query performance"
once both systems execute with fine-grained massive parallelism.  We count
every record fetched from storage (index entries and base records alike),
before filtering — that is what costs an IO.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.job import OutputRow

__all__ = ["ExecutionMetrics", "FailureRecord", "FailureReport", "JobResult"]


@dataclass
class ExecutionMetrics:
    """Counters accumulated while executing one job."""

    #: records fetched from storage, pre-filter (index entries + base rows)
    record_accesses: int = 0
    #: of which: entries read from B-tree structures
    index_entry_accesses: int = 0
    #: of which: rows read from base files
    base_record_accesses: int = 0
    #: random disk reads charged
    random_reads: int = 0
    #: dereference page lookups served from a node's buffer pool
    cache_hits: int = 0
    #: dereference page lookups that went to disk (pool enabled but cold)
    cache_misses: int = 0
    #: scan-backed stages materialized (one sequential pass each)
    scan_stage_builds: int = 0
    #: bytes sequentially scanned to build scan-backed stage tables
    scan_stage_bytes: int = 0
    #: dereference invocations that crossed nodes
    remote_fetches: int = 0
    #: bytes moved across the network for remote dereferences
    bytes_transferred: int = 0
    #: function invocations per stage index
    stage_invocations: Counter = field(default_factory=Counter)
    #: records fetched per stage index
    stage_record_accesses: Counter = field(default_factory=Counter)
    #: peak concurrent pool threads observed across all nodes
    peak_parallelism: int = 0
    #: simulated seconds from job launch to completion
    elapsed_seconds: float = 0.0
    #: mean fraction of disk spindles busy during the run (0..1) — how
    #: close the engine came to the IOPS capacity SMPE is built to exploit
    disk_utilization: float = 0.0
    #: transient IO / network faults the engine observed (pre-retry)
    transient_faults: int = 0
    #: dereference invocations abandoned by the per-invocation timeout
    timeouts: int = 0
    #: retry attempts issued (capped exponential backoff, simulated time)
    retries: int = 0
    #: dereference attempts re-routed to a survivor after a node crash
    reroutes: int = 0
    #: work units dropped under ``on_error='skip'`` (see the FailureReport)
    tasks_skipped: int = 0
    #: node crashes observed while this job was running
    node_crashes: int = 0
    #: structure-page checksum failures detected during probes
    corruptions_detected: int = 0
    #: structures withdrawn from service mid-job after a checksum failure
    quarantines: int = 0
    #: probes re-served from a scan-built recovery table after quarantine
    corruption_fallbacks: int = 0
    #: unmerged delta runs consulted by delta-aware probes (0 on static
    #: lakes — the streaming-ingest path never fires there)
    delta_probes: int = 0
    #: live records/entries served from delta runs (post-filter)
    delta_entries: int = 0
    #: base records or delta payloads dropped by newest-wins upserts
    delta_superseded: int = 0
    #: ingest event-time watermark this job observed at submission
    #: (None on static lakes or before the first committed batch)
    freshness_watermark: Optional[float] = None
    #: placement epoch the job was routed under at submission (None on
    #: static clusters — only set when a TopologyController is attached)
    placement_epoch: Optional[int] = None
    #: jobs answered entirely from the semantic result cache (tier B);
    #: set on the fresh metrics a cache-served ticket carries
    result_cache_hits: int = 0
    #: scan-backed stage tables adopted from the result cache (tier A)
    #: instead of being rebuilt — each one is a build charge avoided
    scan_table_cache_hits: int = 0
    #: batched dereference dispatches (0 on the per-record reference path)
    batches: int = 0
    #: pointers/targets served through batched dispatches
    batched_probes: int = 0
    #: sum of configured batch capacities across dispatches (fill-factor
    #: denominator: a dispatch of 3 probes at batch_size=64 adds 64 here)
    batched_capacity: int = 0
    #: per-dereference timeline events when tracing is enabled, else None
    trace: Any = None

    def count_fetch(self, stage: int, num_records: int, is_index: bool,
                    random_reads: int) -> None:
        """Account one dereference invocation's storage fetch."""
        self.record_accesses += num_records
        if is_index:
            self.index_entry_accesses += num_records
        else:
            self.base_record_accesses += num_records
        self.random_reads += random_reads
        self.stage_invocations[stage] += 1
        self.stage_record_accesses[stage] += num_records

    def count_invocation(self, stage: int) -> None:
        """Account one referencer invocation (no storage fetch)."""
        self.stage_invocations[stage] += 1

    def count_batch(self, num_probes: int, capacity: int) -> None:
        """Account one batched dereference dispatch of ``num_probes``
        targets under a configured capacity of ``capacity``."""
        self.batches += 1
        self.batched_probes += num_probes
        self.batched_capacity += capacity

    @property
    def batch_fill(self) -> float:
        """Mean fraction of configured batch capacity actually used."""
        if self.batched_capacity <= 0:
            return 0.0
        return self.batched_probes / self.batched_capacity

    @property
    def amortized_reads_per_record(self) -> float:
        """Random reads per fetched record — the amortization headline:
        batching drives this down by deduplicating page walks."""
        if self.record_accesses <= 0:
            return 0.0
        return self.random_reads / self.record_accesses

    def count_remote(self, nbytes: int) -> None:
        self.remote_fetches += 1
        self.bytes_transferred += nbytes

    def count_fault(self, kind: str) -> None:
        """Account one observed fault by kind (see FailureRecord kinds)."""
        if kind == "timeout":
            self.timeouts += 1
        elif kind == "node-crash":
            self.reroutes += 1
        else:
            self.transient_faults += 1

    def summary(self) -> dict[str, Any]:
        """Flat dict view for reports and benchmark tables.

        Batch keys appear only when at least one batched dispatch ran,
        so per-record (``batch_size=1``) runs keep the exact key set —
        and therefore the exact rendered reports — of the pre-batching
        engines.
        """
        out = {
            "record_accesses": self.record_accesses,
            "index_entry_accesses": self.index_entry_accesses,
            "base_record_accesses": self.base_record_accesses,
            "random_reads": self.random_reads,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "scan_stage_builds": self.scan_stage_builds,
            "scan_stage_bytes": self.scan_stage_bytes,
            "remote_fetches": self.remote_fetches,
            "bytes_transferred": self.bytes_transferred,
            "peak_parallelism": self.peak_parallelism,
            "elapsed_seconds": self.elapsed_seconds,
            "transient_faults": self.transient_faults,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "tasks_skipped": self.tasks_skipped,
            "node_crashes": self.node_crashes,
            "corruptions_detected": self.corruptions_detected,
            "quarantines": self.quarantines,
            "corruption_fallbacks": self.corruption_fallbacks,
            "delta_probes": self.delta_probes,
            "delta_entries": self.delta_entries,
            "delta_superseded": self.delta_superseded,
            "freshness_watermark": self.freshness_watermark,
        }
        if self.placement_epoch is not None:
            out["placement_epoch"] = self.placement_epoch
        # Cache counters appear only when a result cache served anything,
        # so cacheless runs keep the exact pre-cache key set.
        if self.result_cache_hits:
            out["result_cache_hits"] = self.result_cache_hits
        if self.scan_table_cache_hits:
            out["scan_table_cache_hits"] = self.scan_table_cache_hits
        if self.batches:
            out["batches"] = self.batches
            out["batched_probes"] = self.batched_probes
            out["batch_fill"] = round(self.batch_fill, 4)
            out["amortized_reads_per_record"] = round(
                self.amortized_reads_per_record, 4)
        return out


@dataclass(frozen=True)
class FailureRecord:
    """One work unit the engine could not complete.

    ``kind`` is one of ``"transient-io"`` (exhausted retries on IO or
    network faults), ``"timeout"`` (exhausted retries on invocation
    timeouts), ``"node-crash"`` (no survivor could serve the unit), or
    ``"user-error"`` (application code raised; never retried).
    """

    stage: int
    node: int
    partition: Optional[int]
    kind: str
    error: str
    attempts: int
    time: float


@dataclass
class FailureReport:
    """Structured account of everything a run lost.

    Attached to every cluster-engine :class:`JobResult`; empty means the
    run completed with no work dropped.  Under ``on_error='skip'`` this is
    the contract that makes partial results honest: each dropped stage
    input is recorded, so "what is missing" is exact rather than implied.
    """

    records: list[FailureRecord] = field(default_factory=list)
    #: quarantine events: structures withdrawn mid-job after a checksum
    #: failure.  Recorded separately because the affected probes were
    #: re-served from a scan — nothing was lost, so these do not make the
    #: result incomplete.
    quarantined: list[FailureRecord] = field(default_factory=list)
    #: topology events observed mid-job (a node retired by a drain, a
    #: crash during rebalance): re-routed work, nothing lost, so — like
    #: quarantines — these never make the result incomplete.
    topology: list[str] = field(default_factory=list)

    def add(self, record: FailureRecord) -> None:
        self.records.append(record)

    def note_quarantine(self, record: FailureRecord) -> None:
        self.quarantined.append(record)

    def note_topology(self, note: str) -> None:
        self.topology.append(note)

    @property
    def dropped_units(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def counts_by_kind(self) -> dict[str, int]:
        return dict(Counter(r.kind for r in self.records))

    def counts_by_stage(self) -> dict[int, int]:
        return dict(Counter(r.stage for r in self.records))

    def render(self) -> str:
        """Human-readable account, one line per dropped unit."""
        if not self.records and not self.quarantined and not self.topology:
            return "FailureReport: complete result, nothing lost"
        if not self.records:
            lines = ["FailureReport: complete result, nothing lost"]
        else:
            by_kind = ", ".join(f"{k}={v}" for k, v in
                                sorted(self.counts_by_kind().items()))
            lines = [f"FailureReport: {self.dropped_units} work unit"
                     f"{'s' if self.dropped_units != 1 else ''} lost "
                     f"({by_kind})"]
            for r in self.records:
                where = (f"partition {r.partition}"
                         if r.partition is not None else "n/a")
                lines.append(
                    f"  stage {r.stage:2d} node {r.node} {where:<13s} "
                    f"{r.kind:<13s} after {r.attempts} attempt"
                    f"{'s' if r.attempts != 1 else ''} at "
                    f"{r.time * 1e3:.2f}ms: {r.error}")
        if self.quarantined:
            lines.append(
                f"Quarantined mid-job ({len(self.quarantined)} event"
                f"{'s' if len(self.quarantined) != 1 else ''}, "
                "re-served by scan, nothing lost):")
            for r in self.quarantined:
                where = (f"partition {r.partition}"
                         if r.partition is not None else "n/a")
                lines.append(
                    f"  stage {r.stage:2d} node {r.node} {where:<13s} "
                    f"{r.kind:<13s} at {r.time * 1e3:.2f}ms: {r.error}")
        if self.topology:
            lines.append(
                f"Topology events mid-job ({len(self.topology)} event"
                f"{'s' if len(self.topology) != 1 else ''}, work "
                "re-routed, nothing lost):")
            for note in self.topology:
                lines.append(f"  {note}")
        return "\n".join(lines)


@dataclass
class JobResult:
    """What an engine returns: output rows plus the metrics of the run."""

    rows: list[OutputRow]
    metrics: ExecutionMetrics
    #: what the run lost (cluster engines always attach one; the in-memory
    #: reference executor, which cannot fault, leaves it None)
    failure_report: Optional[FailureReport] = None
    #: True when the job was cancelled mid-run (deadline, caller abort):
    #: the rows are an honest prefix of the answer, not the answer
    cancelled: bool = False

    @property
    def complete(self) -> bool:
        """True when no work unit was dropped and the run was not cut
        short by cancellation."""
        return not self.failure_report and not self.cancelled

    def __len__(self) -> int:
        return len(self.rows)

    def row_set(self, interpreter, fields: Sequence[str]) -> set[tuple]:
        """Order-insensitive comparable view of the output.

        Engines differ wildly in output order (SMPE is massively
        concurrent), so correctness comparisons use this canonical set of
        projected tuples.
        """
        projected = []
        for row in self.rows:
            flat = row.project(interpreter, fields)
            projected.append(tuple(sorted(flat.items(),
                                          key=lambda kv: kv[0])))
        return set(projected)

    def sorted_rows(self, interpreter, fields: Sequence[str]
                    ) -> list[dict[str, Any]]:
        """Deterministically ordered projected rows (for display)."""
        rows = [row.project(interpreter, fields) for row in self.rows]
        rows.sort(key=lambda r: tuple(repr(v) for v in r.values()))
        return rows
