"""A selectivity-based hybrid planner — the paper's missing optimizer.

Section III-E ends Figure 7's discussion with: "the current prototype does
not implement efficient data processing on unstructured data or a query
optimizer.  If ReDe implements them, ReDe could choose data processing
plans appropriately based on query selectivities; i.e., ReDe would perform
comparably with Impala in the high selectivity range."  Section V-D frames
the same idea as integrating LakeHarbor with scan-oriented systems.

This module implements that optimizer as the *whole-query special case*
of the per-stage planner in :mod:`repro.plan.planner`:

* :class:`CostModel` — a thin façade over the planner's whole-job cost
  primitives (the initial index probe's cardinality is answered exactly
  by the B-tree, which is the whole point of structures being
  first-class: the optimizer can ask them).  With buffer pools
  provisioned (``cache_bytes > 0``) the indexed estimate discounts
  repeated probe IO by the expected hit rate.
* :class:`HybridExecutor` — a thin wrapper over the planner's two
  degenerate plans: estimate both, run the cheaper one, report the
  decision.  Its runtime envelope is ``~min(ReDe, scan)`` across the
  selectivity range, which is exactly the "perform comparably with
  Impala in the high selectivity range" the paper predicts (regenerated
  by ``benchmarks/bench_ext_hybrid.py``).  For mixed per-stage plans use
  :class:`repro.engine.planned.PlanningExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.baselines.scan_engine import PlanNode, ScanEngine
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.job import Job
from repro.engine.executor import ReDeExecutor
from repro.errors import ExecutionError
from repro.plan.planner import (
    estimate_indexed_job_seconds,
    estimate_scan_plan_seconds,
    initial_cardinality,
    plan_joins,
    plan_tables,
)
from repro.storage.blockstore import BlockStore

__all__ = ["CostModel", "HybridExecutor", "HybridResult", "PlanChoice"]

# Kept under their pre-plan-layer names for callers of the old helpers.
_plan_tables = plan_tables
_plan_joins = plan_joins


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's decision and both estimates (seconds)."""

    chosen: str  # "rede" or "scan"
    rede_estimate: float
    scan_estimate: float
    #: estimated matches of the initial probes (exact mode: an integer
    #: count; histogram mode: an interpolated float)
    initial_cardinality: float


@dataclass
class HybridResult:
    """Outcome of a hybrid execution."""

    choice: PlanChoice
    rows: list
    elapsed_seconds: float
    record_accesses: int  # 0 for scan executions


class CostModel:
    """Analytic cost estimates for indexed vs scan execution.

    A façade over the whole-job primitives in :mod:`repro.plan.planner`
    (where the per-stage planner also consults them); at
    ``cache_bytes == 0`` the arithmetic is identical to the pre-plan
    formulas.

    ``statistics`` selects the cardinality source: ``"exact"`` asks the
    B-trees directly (free in simulation, deterministic), ``"histogram"``
    uses compact equi-depth histograms built once per structure — what a
    real system would keep (see :mod:`repro.storage.stats`).
    """

    def __init__(self, cluster_spec: ClusterSpec,
                 per_match_access_factor: Optional[float] = None,
                 statistics: str = "exact",
                 histogram_buckets: int = 32,
                 cache_hit_time: float =
                 DEFAULT_ENGINE_CONFIG.cache_hit_time) -> None:
        if statistics not in ("exact", "histogram"):
            raise ExecutionError(
                f"statistics must be exact|histogram, got {statistics!r}")
        self.spec = cluster_spec
        #: estimated record accesses per initial index match, across the
        #: whole downstream chain; defaults to one access per dereference
        #: stage and can be calibrated from a prior run's metrics.
        self.per_match_access_factor = per_match_access_factor
        self.statistics = statistics
        self.histogram_buckets = histogram_buckets
        self.cache_hit_time = cache_hit_time
        self._histograms: dict[str, Any] = {}

    # -- statistics ------------------------------------------------------

    def initial_cardinality(self, catalog: StructureCatalog,
                            job: Job) -> float:
        """Cardinality of the job's initial probes.

        First-class structures make statistics trivial: in ``"exact"``
        mode the B-tree *is* the statistic; in ``"histogram"`` mode the
        compact summary answers instead.
        """
        return initial_cardinality(catalog, job.inputs, self.statistics,
                                   self._histograms,
                                   self.histogram_buckets)

    # -- estimates -------------------------------------------------------

    def estimate_rede_seconds(self, catalog: StructureCatalog,
                              job: Job) -> float:
        """floor (chain latency) + throughput term (accesses over IOPS).

        When the cluster provisions buffer pools, repeated probe IO is
        discounted by the expected hit rate over the job's working set —
        hits cost RAM service time, not a cold random read.
        """
        return estimate_indexed_job_seconds(
            self.spec, catalog, job, self.per_match_access_factor,
            self.statistics, self._histograms, self.histogram_buckets,
            cache_hit_time=self.cache_hit_time)

    def estimate_scan_seconds(self, store: BlockStore,
                              plan: PlanNode) -> float:
        """Scan phases at array bandwidth plus per-tuple join CPU."""
        return estimate_scan_plan_seconds(self.spec, store, plan)

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes


class HybridExecutor:
    """Chooses between the indexed ReDe plan and the scan plan, per query.

    Both executions stay available; only the estimate decides.  Pass
    ``force`` to bypass the optimizer (used by tests and the bench to
    measure both sides).
    """

    def __init__(self, catalog: StructureCatalog, store: BlockStore,
                 cluster_spec: ClusterSpec,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 per_match_access_factor: Optional[float] = None) -> None:
        self.catalog = catalog
        self.store = store
        self.cluster_spec = cluster_spec
        self.config = config
        self.cost_model = CostModel(cluster_spec, per_match_access_factor)

    def calibrate(self, job: Job) -> float:
        """Feedback calibration: set the access factor from one observed run.

        Runs ``job`` once on the simulation-free reference executor,
        measures *actual* record accesses per initial index match, and
        installs that as the cost model's ``per_match_access_factor`` —
        the classic optimizer feedback loop, cheap here because the oracle
        charges no virtual time.  Returns the new factor.
        """
        from repro.engine.reference import ReferenceExecutor

        result = ReferenceExecutor(self.catalog).execute(job)
        cardinality = max(
            1, self.cost_model.initial_cardinality(self.catalog, job))
        factor = result.metrics.record_accesses / cardinality
        self.cost_model = CostModel(self.cluster_spec,
                                    per_match_access_factor=factor)
        return factor

    def plan(self, job: Job, scan_plan: PlanNode) -> PlanChoice:
        """Estimate both sides and pick the cheaper."""
        rede_estimate = self.cost_model.estimate_rede_seconds(self.catalog,
                                                              job)
        scan_estimate = self.cost_model.estimate_scan_seconds(self.store,
                                                              scan_plan)
        chosen = "rede" if rede_estimate <= scan_estimate else "scan"
        return PlanChoice(chosen, rede_estimate, scan_estimate,
                          self.cost_model.initial_cardinality(self.catalog,
                                                              job))

    def execute(self, job: Job, scan_plan: PlanNode,
                force: Optional[str] = None) -> HybridResult:
        choice = self.plan(job, scan_plan)
        chosen = force or choice.chosen
        cluster = Cluster(self.cluster_spec)
        if chosen == "rede":
            executor = ReDeExecutor(cluster, self.catalog,
                                    config=self.config, mode="smpe")
            result = executor.execute(job)
            return HybridResult(choice, result.rows,
                                result.metrics.elapsed_seconds,
                                result.metrics.record_accesses)
        engine = ScanEngine(cluster, self.store)
        result = engine.execute(scan_plan)
        return HybridResult(choice, result.rows,
                            result.metrics.elapsed_seconds, 0)
