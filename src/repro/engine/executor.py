"""The ReDe executor facade.

One entry point over the three execution modes:

* ``"smpe"`` — scalable massively parallel execution (the paper's default);
* ``"partitioned"`` — structures with partitioned parallelism only
  ("ReDe w/o SMPE" in Figure 7);
* ``"reference"`` — the in-memory oracle (no cluster, no virtual time).
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.job import Job
from repro.engine.metrics import JobResult
from repro.engine.partitioned import PartitionedEngine
from repro.engine.reference import ReferenceExecutor
from repro.engine.smpe import JobHandle, SmpeEngine
from repro.errors import ExecutionError

__all__ = ["ReDeExecutor"]

logger = logging.getLogger("repro.engine")

_MODES = ("smpe", "partitioned", "reference")


class ReDeExecutor:
    """Executes Reference-Dereference jobs in a chosen mode.

    Example::

        executor = ReDeExecutor(cluster, catalog, mode="smpe")
        result = executor.execute(job)
        print(result.metrics.elapsed_seconds, len(result.rows))
    """

    def __init__(self, cluster: Optional[Cluster],
                 catalog: StructureCatalog,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 mode: str = "smpe") -> None:
        if mode not in _MODES:
            raise ExecutionError(
                f"unknown mode {mode!r}; expected one of {_MODES}")
        if mode != "reference" and cluster is None:
            raise ExecutionError(f"mode {mode!r} needs a cluster")
        self.cluster = cluster
        self.catalog = catalog
        self.config = config
        self.mode = mode
        if cluster is not None and config.cache_bytes > 0:
            # Engine-level buffer-pool provisioning: nodes whose spec
            # already attached a pool keep it (and its warm contents).
            cluster.provision_caches(config.cache_bytes,
                                     config.cache_policy)

    def submit_handle(self, job: Job, limit: Optional[int] = None,
                      propagate_errors: bool = True) -> JobHandle:
        """Launch ``job`` without driving the simulation; SMPE mode only.

        Returns a :class:`~repro.engine.smpe.JobHandle` supporting
        cooperative cancellation — the control surface the serving
        gateway builds on.  The other modes execute synchronously and
        have no handle to give out.
        """
        if self.mode != "smpe":
            raise ExecutionError(
                f"mode {self.mode!r} cannot submit asynchronously; "
                "only 'smpe' supports job handles")
        assert self.cluster is not None
        engine = SmpeEngine(self.cluster, self.catalog, self.config)
        return engine.submit_handle(job, limit=limit,
                                    propagate_errors=propagate_errors)

    def execute(self, job: Job,
                max_time: Optional[float] = None,
                limit: Optional[int] = None) -> JobResult:
        """Run a job and return its rows and metrics.

        With ``limit``, execution terminates early once that many output
        rows exist (SMPE drains its outstanding fine-grained tasks without
        dispatching new ones).
        """
        if self.mode == "reference":
            result = ReferenceExecutor(
                self.catalog, config=self.config).execute(job, limit=limit)
        else:
            assert self.cluster is not None
            if self.mode == "smpe":
                engine = SmpeEngine(self.cluster, self.catalog, self.config)
            else:
                engine = PartitionedEngine(self.cluster, self.catalog,
                                           self.config)
            result = engine.execute(job, max_time=max_time, limit=limit)
        logger.debug(
            "%s executed %r: %d rows, %d record accesses, %.4fs simulated",
            self.mode, job.name, len(result.rows),
            result.metrics.record_accesses,
            result.metrics.elapsed_seconds)
        return result
