"""Shared storage-access logic with simulated cost charging.

Every engine funnels its dereferences through :func:`simulated_dereference`,
which performs the *real* data-plane fetch (so results are correct) while
charging virtual time for it:

* random reads on the disk of the node that owns the partition (B-tree
  probes pay one read per page traversed; base-file lookups one per heap
  page the fetched record bytes span) — and when the owning node carries a
  :class:`~repro.storage.cache.BufferPool`, each traversed page consults
  it first, so hits cost RAM service time instead of a disk read;
* a network round trip when the executing node is not the owner;
* a sliver of CPU on the executing node for filtering fetched records.

This module is also where physical-plan access paths meet the engines:
scan-backed stages (a :class:`~repro.plan.scanstage.
ScanLookupDereferencer` emitted by the per-stage planner) are recognized
here and charged as one parallel sequential pass that builds a
replicated hash table — every node scans its local partitions, spends
build CPU, and ships its share to peers — after which each probe costs
only in-memory lookup CPU.  Because every engine funnels through this
function, SMPE, the partitioned engine, and the reference executor all
run mixed scan/index jobs without any engine-side changes.

Partition resolution (:func:`resolve_partitions`) also implements the
structural pruning a range partitioner affords to range probes.
"""

from __future__ import annotations

import bisect
from typing import (TYPE_CHECKING, Any, Callable, Iterator, Optional,
                    Sequence, Union)

from repro.cluster.cluster import Cluster
from repro.cluster.disk import DiskSpec
from repro.config import EngineConfig
from repro.core.functions import Dereferencer
from repro.core.pointers import Pointer, PointerKind, PointerRange
from repro.core.records import Record
from repro.ingest.delta import (dead_base_keys, is_delta_tag,
                                probe_delta_runs, probe_delta_tag,
                                tombstone_set)
from repro.engine.metrics import (ExecutionMetrics, FailureRecord,
                                  FailureReport)
from repro.engine.trace import TraceEvent
from repro.errors import (DereferenceTimeout, ExecutionError, FaultError,
                          NodeCrashed, ReproError, StructureCorruptionError,
                          TransientIOError)
from repro.plan.scanstage import ScanLookupDereferencer
from repro.storage.cache import PageId, page_checksum
from repro.storage.files import (INDEX_KEY_FIELD, TARGET_KEY_FIELD,
                                 TARGET_KIND_FIELD, TARGET_PARTITION_FIELD,
                                 BtreeFile, File, PartitionedFile)
from repro.storage.partitioner import RangePartitioner

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.catalog import StructureCatalog

__all__ = ["resolve_partitions", "initial_probe_pids",
           "simulated_dereference", "resilient_dereference",
           "recovering_dereference", "count_only_dereference",
           "batched_dereference", "resilient_dereference_batch",
           "recovering_dereference_batch", "count_only_dereference_batch",
           "classify_failure", "stamp_watermark", "stamp_epoch"]

Target = Union[Pointer, PointerRange]
#: one batched work item: (target, carried context)
Probe = tuple[Target, Any]


def resolve_partitions(file: File, target: Target,
                       executing_node: Optional[int] = None,
                       local_only: bool = False) -> list[int]:
    """Partition ids a dereference must touch.

    * ``local_only`` restricts to partitions on the executing node — this is
      Algorithm 1's ``SETPARTITION(input, LOCAL)`` after a broadcast, and
      also how each node serves its share of a job-level range probe on a
      local index.
    * A keyed target resolves to exactly one partition.
    * A partition-less range over a *range-partitioned* structure prunes to
      the partitions intersecting the range.
    """
    if getattr(file, "scope", None) == "replicated":
        # A fully replicated index is probed on the local replica; the
        # simulation-free reference executor uses replica 0.
        if executing_node is not None:
            return file.partitions_on_node(executing_node)
        return [0]
    if local_only:
        if executing_node is None:
            raise ExecutionError("local-only resolution needs a node id")
        pids = file.partitions_on_node(executing_node)
        if (isinstance(target, PointerRange)
                and isinstance(file.partitioner, RangePartitioner)):
            keep = set(file.partitioner.partition_range(target.low,
                                                        target.high))
            pids = [pid for pid in pids if pid in keep]
        return pids
    if getattr(file, "scope", None) == "local":
        # A local secondary index partitions by the *base* key, so an
        # index-keyed probe cannot be routed: it must touch every
        # partition (which is exactly what makes the scheme "local").
        # The engines' broadcast path covers the per-node parallel case;
        # this covers direct keyed probes.
        return list(range(file.num_partitions))
    if target.partition_key is not None:
        return [file.partition_of_key(target.partition_key)]
    if (isinstance(target, PointerRange)
            and isinstance(file.partitioner, RangePartitioner)):
        return list(file.partitioner.partition_range(target.low,
                                                     target.high))
    return list(range(file.num_partitions))


def initial_probe_pids(file: File, target: Target,
                       node_id: int) -> list[int]:
    """Stage-0 routing: the partitions node ``node_id`` must probe for one
    job input.

    * broadcast targets and probes of *local*-scope indexes: this node's
      local partitions (every node serves its share, range-pruned where
      the partitioner allows);
    * replicated indexes: this node's replica;
    * keyed targets on routable structures: the owning partition, and only
      on the owning node (other nodes get nothing).
    """
    scope = getattr(file, "scope", None)
    if scope == "replicated":
        # Every replica holds everything, so exactly one node serves each
        # job input; keyed inputs spread across replicas by key hash.
        key = (target.partition_key if target.partition_key is not None
               else getattr(target, "key", None))
        serving = (file.partition_of_key(key) % file.num_partitions
                   if key is not None else 0)
        if file.node_of(serving) != node_id:
            return []
        return [serving]
    if target.partition_key is None or scope == "local":
        return resolve_partitions(file, target, executing_node=node_id,
                                  local_only=True)
    pid = file.partition_of_key(target.partition_key)
    if file.node_of(pid) != node_id:
        return []
    return [pid]


#: page size assumed when no cluster supplies a disk (reference executor)
_REFERENCE_PAGE_SIZE = DiskSpec().page_size


def _fetch_cost_reads(file: File, records: Sequence[Record],
                      page_size: int) -> int:
    """Random reads one fetch costs on the owning node (uncached model)."""
    if isinstance(file, BtreeFile):
        return file.probe_io_count(len(records))
    # Base-file lookup: records under one key pack contiguously in the
    # heap, so the fetch reads as many pages as the record bytes span —
    # minimum one (a miss still reads the page that would have held it).
    total_bytes = sum(record.size_bytes for record in records)
    return max(1, -(-total_bytes // page_size))


def _probe_page_ids(file: File, target: Target,
                    partition_id: int, page_size: int
                    ) -> Optional[list[PageId]]:
    """The pages one fetch traverses, or ``None`` when the structure
    cannot enumerate them (fall back to the uncached cost model)."""
    if isinstance(file, BtreeFile):
        return file.probe_page_ids(partition_id, target)
    if isinstance(file, PartitionedFile) and isinstance(target, Pointer):
        return file.probe_page_ids(partition_id, target, page_size)
    return None


def simulated_dereference(cluster: Cluster, config: EngineConfig,
                          metrics: ExecutionMetrics, stage: int,
                          dereferencer: Dereferencer, file: File,
                          target: Target, partition_id: int,
                          executing_node: int,
                          context: Any) -> Iterator:
    """Process generator: one dereference against one partition.

    Charges IO/network/CPU in virtual time and *returns* the filtered
    records (use with ``yield from``).

    The owning node is resolved through :meth:`Cluster.serving_node`, so
    after a permanent node crash the IO lands on the survivor that adopted
    the dead node's partitions (replica promotion) instead of a dead disk.
    """
    if isinstance(dereferencer, ScanLookupDereferencer):
        records = yield from _scan_stage_dereference(
            cluster, metrics, stage, dereferencer, file, target,
            partition_id, executing_node, context)
        return records
    home = file.node_of(partition_id)
    owner = cluster.serving_node(home)
    start_time = cluster.sim.now
    records = dereferencer.fetch(file, target, partition_id)
    is_index = isinstance(file, BtreeFile)
    owner_disk = cluster.node(owner).disk
    page_size = owner_disk.spec.page_size

    injector = cluster.faults
    check = injector is not None and injector.has_corruption

    pool = cluster.node(owner).buffer_pool
    pages = None
    if pool is not None and pool.enabled:
        pages = _probe_page_ids(file, target, partition_id, page_size)
    hits = misses = 0
    if pages is not None:
        # Page-granular path: each traversed page consults the owner's
        # buffer pool.  A hit costs RAM service time; a miss pays the
        # disk's random read and then caches the page.  Page reads within
        # one probe are dependent (parent -> child, leaf -> next leaf), so
        # they serialize inside this simulated thread.
        for page in pages:
            if pool.lookup(page):
                hits += 1
                metrics.cache_hits += 1
                if config.cache_hit_time > 0:
                    yield cluster.sim.timeout(config.cache_hit_time)
            else:
                misses += 1
                metrics.cache_misses += 1
                yield from owner_disk.random_read()
                # only a read that completed populates the cache
                pool.insert(page, page_size)
            # The checksum is verified after the read is paid for — a
            # corrupt page costs its IO like any other (the verdict keys
            # on the home node, so it survives replica promotion).
            if check and injector.page_corrupt(home, page):
                raise _corruption_error(file, page)
        metrics.count_fetch(stage, len(records), is_index, misses)
    else:
        reads = _fetch_cost_reads(file, records, page_size)
        metrics.count_fetch(stage, len(records), is_index, reads)
        for __ in range(reads):
            # Dependent page reads serialize inside this simulated thread.
            yield from owner_disk.random_read()
        if check:
            for page in (_probe_page_ids(file, target, partition_id,
                                         page_size) or ()):
                if injector.page_corrupt(home, page):
                    raise _corruption_error(file, page)

    if owner != executing_node:
        response_bytes = sum(r.size_bytes for r in records)
        metrics.count_remote(config.pointer_bytes + response_bytes)
        yield from cluster.network.request_response(
            executing_node, owner, config.pointer_bytes, response_bytes)

    if records:
        yield from cluster.node(executing_node).process_tuples(len(records))
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=owner, num_records=len(records),
            start=start_time, end=cluster.sim.now,
            cache_hits=hits, cache_misses=misses))
    return dereferencer.apply_filter(records, context)


def _scan_stage_build(cluster: Cluster, metrics: ExecutionMetrics,
                      dereferencer: ScanLookupDereferencer,
                      file: File) -> Iterator:
    """Materialize a scan-backed stage's replicated hash table, once.

    The first probe pays for it: every node scans its local partitions
    sequentially (in parallel), spends one core's build CPU, and ships
    its share of the table to peers — the cost shape of a grace hash
    join's build side.  Concurrent probes wait on the build event;
    later probes see ``ready`` and pay nothing.

    On a fresh table (unmerged ingest delta runs), each node also reads
    its share of the delta bytes and spends build CPU on the delta rows;
    the build is keyed by the run set, so a newly committed run makes
    the next probe rebuild (and re-pay) the table.
    """
    token = dereferencer.delta_token()
    state = dereferencer.runtime.setdefault(id(cluster), {})
    if state.get("ready") and state.get("token") == token:
        return
    event = state.get("event")
    if event is not None and state.get("token") == token:
        yield event
        return
    if dereferencer.adopt_cached(file):
        # A previous job already paid for this exact table (same file,
        # same unmerged-run set) and published it to the attached result
        # cache: adopt it — no scan, no build CPU, no shipping.
        metrics.scan_table_cache_hits += 1
        state["token"] = token
        state["ready"] = True
        return
    state["token"] = token
    state["ready"] = False
    event = cluster.sim.event()
    state["event"] = event

    def build_on(node_id: int):
        serving = cluster.serving_node(node_id)
        node = cluster.node(serving)
        nbytes = rows = 0
        pids = file.partitions_on_node(node_id)
        for pid in pids:
            nbytes += file.partition_bytes(pid)
            rows += sum(1 for __ in file.scan_partition(pid))
        delta_bytes, delta_rows = dereferencer.delta_bytes_on(file, pids)
        nbytes += delta_bytes
        rows += delta_rows
        if nbytes:
            yield from node.disk.sequential_read(nbytes)
        if rows:
            yield from node.process_tuples(rows)
        if cluster.num_nodes > 1 and nbytes:
            shipped = int(nbytes * (cluster.num_nodes - 1)
                          / cluster.num_nodes)
            if shipped:
                yield from cluster.network.transfer(
                    serving, (serving + 1) % cluster.num_nodes, shipped)

    all_pids = list(range(file.num_partitions))
    delta_total, __ = dereferencer.delta_bytes_on(file, all_pids)
    procs = [cluster.launch(build_on(n), name=f"scan-stage@{n}")
             for n in range(cluster.num_nodes)]
    yield cluster.sim.all_of(procs)
    dereferencer.table_for(file)
    metrics.scan_stage_builds += 1
    metrics.scan_stage_bytes += file.total_bytes + delta_total
    dereferencer.publish_table(file, file.total_bytes + delta_total)
    state["ready"] = True
    event.succeed()


def _scan_stage_dereference(cluster: Cluster, metrics: ExecutionMetrics,
                            stage: int,
                            dereferencer: ScanLookupDereferencer,
                            file: File, target: Target, partition_id: int,
                            executing_node: int, context: Any) -> Iterator:
    """One probe of a scan-backed stage: build-once, then memory lookups."""
    start_time = cluster.sim.now
    yield from _scan_stage_build(cluster, metrics, dereferencer, file)
    records = dereferencer.fetch(file, target, partition_id)
    metrics.count_fetch(stage, len(records), False, 0)
    if records:
        yield from cluster.node(executing_node).process_tuples(len(records))
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=executing_node, num_records=len(records),
            start=start_time, end=cluster.sim.now))
    return dereferencer.apply_filter(records, context)


def _corruption_error(file: File, page: PageId) -> StructureCorruptionError:
    return StructureCorruptionError(
        f"checksum mismatch on {page.file!r} partition {page.partition} "
        f"{page.page_kind} page {page.page_no} (expected crc "
        f"{page_checksum(page):08x})", structure=file.name, page=page)


def classify_failure(exc: BaseException) -> str:
    """FailureRecord kind for an exception the resilience layer caught."""
    if isinstance(exc, ExecutionError) and isinstance(exc.__cause__,
                                                      FaultError):
        exc = exc.__cause__
    if isinstance(exc, DereferenceTimeout):
        return "timeout"
    if isinstance(exc, NodeCrashed):
        return "node-crash"
    if isinstance(exc, StructureCorruptionError):
        return "corruption"
    if isinstance(exc, TransientIOError):
        return "transient-io"
    return "user-error"


def _trace_fault(cluster: Cluster, metrics: ExecutionMetrics, stage: int,
                 node: int, partition_id: int, kind: str) -> None:
    if metrics.trace is not None:
        now = cluster.sim.now
        metrics.trace.append(TraceEvent(
            stage=stage, node=node, partition=partition_id,
            owner_node=node, num_records=0, start=now, end=now, kind=kind))


def _timed_dereference(cluster: Cluster, config: EngineConfig,
                       metrics: ExecutionMetrics, stage: int,
                       dereferencer: Dereferencer, file: File,
                       target: Target, partition_id: int,
                       executing_node: int, context: Any) -> Iterator:
    """One dereference attempt raced against the invocation timeout.

    The attempt runs as its own simulated process so the caller can
    abandon it: when the timer wins, the in-flight IO keeps occupying its
    resources (as a real abandoned request would) but its records and any
    late exception are discarded, and :class:`DereferenceTimeout` is
    raised for the retry loop to handle.
    """

    def attempt():
        try:
            records = yield from simulated_dereference(
                cluster, config, metrics, stage, dereferencer, file, target,
                partition_id, executing_node, context)
        except Exception as exc:  # captured: the waiter decides what to do
            return ("error", exc)
        return ("ok", records)

    sim = cluster.sim
    proc = sim.process(attempt(), name=f"deref-attempt@{executing_node}")
    timer = sim.timeout(config.dereference_timeout)
    index, value = yield sim.any_of([proc, timer])
    if index == 1:
        raise DereferenceTimeout(
            f"dereference of {file.name!r} partition {partition_id} "
            f"exceeded {config.dereference_timeout}s on node "
            f"{executing_node}")
    outcome, payload = value
    if outcome == "error":
        raise payload
    return payload


def resilient_dereference(cluster: Cluster, config: EngineConfig,
                          metrics: ExecutionMetrics, stage: int,
                          dereferencer: Dereferencer, file: File,
                          target: Target, partition_id: int,
                          executing_node: int, context: Any,
                          abort_check: Optional[Callable[[], bool]] = None
                          ) -> Iterator:
    """Fault-tolerant dereference: retries, timeouts, crash re-routing.

    The engines' resilience path around :func:`simulated_dereference`:

    * **transient faults** (IO errors, network drops) and **timeouts** are
      retried with capped exponential backoff *in simulated time*, up to
      ``config.max_retries``, unless ``on_error='fail'`` (then the first
      fault propagates immediately); exhaustion raises
      :class:`ExecutionError` with the final fault chained as its cause.
      Each backoff delay is drawn with *full jitter* — uniform on
      ``(0, capped_delay]`` from the fault injector's deterministic
      per-(node, attempt) RNG stream — so concurrent jobs faulting at the
      same instant spread their retries instead of re-colliding in a
      synchronized storm;
    * **node crashes** re-route: the executing side re-resolves through
      :meth:`Cluster.serving_node` each attempt, and the owner side is
      re-resolved inside :func:`simulated_dereference`, so in-flight work
      moves to survivors without consuming the retry budget;
    * user-code exceptions are never retried — they propagate unchanged;
    * ``abort_check`` (when supplied) is consulted at each retry
      boundary: once it reports True the invocation gives up immediately
      and returns no records instead of burning backoff time and disk on
      a job that has been cancelled — its output is discarded anyway.

    When a fault plan is not injected this adds zero simulated events and
    is byte-for-byte identical to calling :func:`simulated_dereference`.
    """
    attempt = 0
    crash_hops = 0
    while True:
        if abort_check is not None and abort_check():
            return []
        exec_node = cluster.serving_node(executing_node)
        try:
            if config.dereference_timeout > 0:
                records = yield from _timed_dereference(
                    cluster, config, metrics, stage, dereferencer, file,
                    target, partition_id, exec_node, context)
            else:
                records = yield from simulated_dereference(
                    cluster, config, metrics, stage, dereferencer, file,
                    target, partition_id, exec_node, context)
            return records
        except NodeCrashed as exc:
            crash_hops += 1
            metrics.count_fault("node-crash")
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         "fault:node-crash")
            if crash_hops > cluster.num_nodes:
                raise ExecutionError(
                    f"no surviving node could serve {file.name!r} "
                    f"partition {partition_id}") from exc
            continue
        except TransientIOError as exc:
            kind = classify_failure(exc)
            metrics.count_fault(kind)
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         f"fault:{kind}")
            if config.on_error == "fail":
                raise
            if attempt >= config.max_retries:
                raise ExecutionError(
                    f"dereference of {file.name!r} partition {partition_id} "
                    f"on node {exec_node} failed after {attempt} "
                    f"retr{'ies' if attempt != 1 else 'y'}") from exc
            delay = min(config.retry_backoff_cap,
                        config.retry_backoff_base * (2.0 ** attempt))
            if delay > 0 and cluster.faults is not None:
                # Full jitter: spread concurrent retries over (0, delay]
                # instead of synchronizing every faulted job on the same
                # backoff instants (retry storms re-saturate the disk the
                # fault came from).  Seeded per (node, attempt), so runs
                # replay byte-for-byte.
                delay *= cluster.faults.retry_jitter(exec_node, attempt)
            attempt += 1
            metrics.retries += 1
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         "retry")
            if delay > 0:
                yield cluster.sim.timeout(delay)


class _ScanRecoveryTable:
    """Replacement serving path for one quarantined index structure.

    Built by scanning the *base* file (whose pages are fine) and
    re-deriving the index entries exactly as the DFS build does — same
    extraction, same physical targets, same placement, same within-key
    order — so probes answered from here return byte-identical records to
    what the healthy index would have returned.  The build is charged once
    per job as a parallel sequential scan (the same cost shape as a
    scan-backed plan stage); concurrent probes wait on the build event.
    """

    def __init__(self, catalog: "StructureCatalog", file: BtreeFile) -> None:
        self.file = file
        self.definition = catalog.definition(file.name)
        self.base = catalog.dfs.get_base(self.definition.base_file)
        self.loader = catalog.dfs.loader_info(self.definition.base_file)
        self._event: Any = None
        self._ready = False
        self._pairs: dict[int, list[tuple[Any, Record]]] = {}
        self._keys: dict[int, list[Any]] = {}

    def _materialize(self) -> None:
        from repro.core.pointers import PointerKind
        from repro.storage.files import IndexEntry

        replicated = self.file.scope == "replicated"
        local = self.file.scope == "local"
        buckets: dict[int, list[tuple[Any, Record]]] = {
            pid: [] for pid in range(self.file.num_partitions)}
        for __, heap in enumerate(self.base.partitions):
            for slot, record in enumerate(heap.scan()):
                keys = self.definition.extract_keys(record)
                base_partition_key = (self.loader.partition_key_fn(record)
                                      if keys else None)
                for index_key in keys:
                    entry = IndexEntry(index_key, base_partition_key, slot,
                                       kind=PointerKind.PHYSICAL)
                    if replicated:
                        for bucket in buckets.values():
                            bucket.append((index_key, entry))
                        continue
                    placement_key = (base_partition_key if local
                                     else index_key)
                    pid = self.file.partition_of_key(placement_key)
                    buckets[pid].append((index_key, entry))
        for pid, bucket in buckets.items():
            # Stable sort: within one key, entries keep base slot order —
            # the same duplicate order the B-tree's bulk load produces.
            bucket.sort(key=lambda pair: pair[0])
            self._pairs[pid] = bucket
            self._keys[pid] = [key for key, __ in bucket]

    def charge_build(self, cluster: Cluster,
                     metrics: ExecutionMetrics) -> Iterator:
        """Pay for (and perform) the one-time base scan, build-once."""
        if self._ready:
            return
        if self._event is not None:
            yield self._event
            return
        self._event = cluster.sim.event()
        base = self.base

        def build_on(node_id: int):
            serving = cluster.serving_node(node_id)
            node = cluster.node(serving)
            nbytes = rows = 0
            for pid in base.partitions_on_node(node_id):
                nbytes += base.partition_bytes(pid)
                rows += len(base.partitions[pid])
            if nbytes:
                yield from node.disk.sequential_read(nbytes)
            if rows:
                yield from node.process_tuples(rows)
            if cluster.num_nodes > 1 and nbytes:
                shipped = int(nbytes * (cluster.num_nodes - 1)
                              / cluster.num_nodes)
                if shipped:
                    yield from cluster.network.transfer(
                        serving, (serving + 1) % cluster.num_nodes, shipped)

        procs = [cluster.launch(build_on(n), name=f"recover@{n}")
                 for n in range(cluster.num_nodes)]
        yield cluster.sim.all_of(procs)
        self._materialize()
        metrics.scan_stage_builds += 1
        metrics.scan_stage_bytes += base.total_bytes
        self._ready = True
        self._event.succeed()

    def probe(self, target: Target, partition_id: int) -> list[Record]:
        """The entries the healthy index would return for this probe."""
        pairs = self._pairs.get(partition_id, [])
        keys = self._keys.get(partition_id, [])
        if isinstance(target, PointerRange):
            lo = (0 if target.low is None
                  else bisect.bisect_left(keys, target.low)
                  if target.inclusive_low
                  else bisect.bisect_right(keys, target.low))
            hi = (len(keys) if target.high is None
                  else bisect.bisect_right(keys, target.high)
                  if target.inclusive_high
                  else bisect.bisect_left(keys, target.high))
        else:
            lo = bisect.bisect_left(keys, target.key)
            hi = bisect.bisect_right(keys, target.key)
        return [entry for __, entry in pairs[lo:hi]]


def _scan_recoverable(catalog: "StructureCatalog", name: str) -> bool:
    """True when a corrupt structure can be re-served from its base file."""
    try:
        definition = catalog.definition(name)
        catalog.dfs.loader_info(definition.base_file)
    except ReproError:
        return False
    return True


def _recovery_probe(cluster: Cluster, metrics: ExecutionMetrics, stage: int,
                    dereferencer: Dereferencer, file: BtreeFile,
                    target: Target, partition_id: int, executing_node: int,
                    context: Any, catalog: "StructureCatalog",
                    runtime: dict) -> Iterator:
    """Serve one probe of a quarantined structure from the recovery table."""
    table = runtime.get(file.name)
    if table is None:
        table = _ScanRecoveryTable(catalog, file)
        runtime[file.name] = table
    yield from table.charge_build(cluster, metrics)
    records = table.probe(target, partition_id)
    metrics.corruption_fallbacks += 1
    metrics.count_fetch(stage, len(records), True, 0)
    if records:
        exec_node = cluster.serving_node(executing_node)
        yield from cluster.node(exec_node).process_tuples(len(records))
    return dereferencer.apply_filter(records, context)


def _has_deltas(catalog: Optional["StructureCatalog"], dereferencer: Any,
                file: File) -> bool:
    """True when this probe must consult unmerged delta runs.

    On a static lake (no registry, or zero runs for this structure) this
    is False for every probe, keeping the whole delta path a strict
    no-op.  Scan-backed stages are excluded: their hash table is itself
    delta-merged at build time (newest-wins, rebuilt when a run
    commits), so a per-probe merge would double-count.
    """
    return (catalog is not None
            and not isinstance(dereferencer, ScanLookupDereferencer)
            and catalog.delta_depth(file.name) > 0)


def _merge_deltas(metrics: ExecutionMetrics, dereferencer: Dereferencer,
                  file: File, target: Target, partition_id: int,
                  context: Any, runs: list,
                  records: list[Record]) -> tuple[list[Record], int]:
    """Fold a base probe's result with the structure's unmerged runs.

    Returns ``(records, runs_consulted)``; the caller charges one
    random read per consulted run.  Newest wins throughout: built-tree
    entries killed by tombstones, base-heap records killed by upsert
    key sets, older-run payloads killed by newer runs' upserts.
    """
    if isinstance(file, BtreeFile):
        tombstones = tombstone_set(runs, partition_id)
        if tombstones:
            kept = []
            for record in records:
                data = record.data
                if (data.get(TARGET_KIND_FIELD) == PointerKind.PHYSICAL.value
                        and (data.get(INDEX_KEY_FIELD),
                             data.get(TARGET_PARTITION_FIELD),
                             data.get(TARGET_KEY_FIELD)) in tombstones):
                    metrics.delta_superseded += 1
                    continue
                kept.append(record)
            records = kept
        additions, superseded = probe_delta_runs(runs, partition_id, target)
    elif (isinstance(target, Pointer)
            and target.kind is PointerKind.LOGICAL):
        if is_delta_tag(target.key):
            # Synthetic address of one delta record; after a compaction
            # folded the run, the heap alias already resolved it above.
            if records:
                additions, superseded = [], 0
            else:
                additions, superseded = probe_delta_tag(
                    runs, partition_id, target.key)
        else:
            if records and target.key in dead_base_keys(runs, partition_id):
                metrics.delta_superseded += len(records)
                records = []
            additions, superseded = probe_delta_runs(
                runs, partition_id, target)
    else:
        # Physical base probes address one slot already vetted by the
        # index-side tombstone filter: nothing to merge, nothing to pay.
        return records, 0
    metrics.delta_superseded += superseded
    metrics.delta_probes += len(runs)
    if additions:
        additions = dereferencer.apply_filter(list(additions), context)
        metrics.delta_entries += len(additions)
        records = records + additions
    return records, len(runs)


def _charged_delta_merge(cluster: Cluster, metrics: ExecutionMetrics,
                         dereferencer: Dereferencer, file: File,
                         target: Target, partition_id: int, context: Any,
                         catalog: "StructureCatalog",
                         records: list[Record]) -> Iterator:
    """Delta merge plus simulated cost: one random read per run, on the
    disk serving the probed partition."""
    runs = catalog.delta_runs(file.name)
    records, consulted = _merge_deltas(
        metrics, dereferencer, file, target, partition_id, context,
        runs, records)
    if consulted:
        owner = cluster.serving_node(file.node_of(partition_id))
        disk = cluster.node(owner).disk
        for __ in range(consulted):
            yield from disk.random_read()
        metrics.random_reads += consulted
    return records


def stamp_watermark(metrics: ExecutionMetrics,
                    catalog: Optional["StructureCatalog"]) -> None:
    """Record the ingest freshness watermark this job observes.

    Called once per job at metrics creation.  A no-op on static lakes
    (no registry attached, or no batch ever staged), so zero-ingest
    runs keep their metrics bit-identical to pre-streaming builds.
    """
    if catalog is None:
        return
    registry = catalog.delta_registry
    if registry is None or not registry.active:
        return
    metrics.freshness_watermark = registry.committed_through


def stamp_epoch(metrics: ExecutionMetrics, cluster: "Cluster") -> None:
    """Record the placement epoch this job is routed under.

    Called once per job at submission.  A no-op on static clusters (no
    :class:`~repro.cluster.topology.TopologyController` attached), so
    elasticity-free runs keep their metrics bit-identical to
    pre-topology builds.  Routing itself needs no epoch check: every
    dereference attempt re-resolves the partition's current owner, so a
    job submitted under epoch N completes correctly against placements
    committed at epoch N+k — the stamp records which placement the job
    *started* under, for observability and benchmark tables.
    """
    topology = cluster.topology
    if topology is None:
        return
    metrics.placement_epoch = topology.epoch


def recovering_dereference(cluster: Cluster, config: EngineConfig,
                           metrics: ExecutionMetrics, stage: int,
                           dereferencer: Dereferencer, file: File,
                           target: Target, partition_id: int,
                           executing_node: int, context: Any, *,
                           catalog: Optional["StructureCatalog"] = None,
                           failures: Optional[FailureReport] = None,
                           runtime: Optional[dict] = None,
                           abort_check: Optional[Callable[[], bool]] = None
                           ) -> Iterator:
    """The per-record access funnel, plus runtime-feedback reporting.

    Delegates to :func:`_recovering_dereference_impl` (the corruption-
    aware fetch) and, when ``config.feedback`` carries a
    :class:`~repro.plan.feedback.RuntimeFeedback`, reports the stage's
    post-filter output count — the observed cardinality adaptive
    re-optimization corrects estimates with.  ``feedback=None`` (the
    default config) is a pure passthrough.
    """
    records = yield from _recovering_dereference_impl(
        cluster, config, metrics, stage, dereferencer, file, target,
        partition_id, executing_node, context, catalog=catalog,
        failures=failures, runtime=runtime, abort_check=abort_check)
    if config.feedback is not None:
        config.feedback.observe(stage, len(records))
    return records


def _recovering_dereference_impl(
        cluster: Cluster, config: EngineConfig,
        metrics: ExecutionMetrics, stage: int,
        dereferencer: Dereferencer, file: File,
        target: Target, partition_id: int,
        executing_node: int, context: Any, *,
        catalog: Optional["StructureCatalog"] = None,
        failures: Optional[FailureReport] = None,
        runtime: Optional[dict] = None,
        abort_check: Optional[Callable[[], bool]] = None) -> Iterator:
    """Corruption-aware wrapper over :func:`resilient_dereference`.

    With no catalog/recovery state supplied — or no corruption injected
    and every structure healthy — this is a pure passthrough: zero extra
    simulated events, byte-identical behavior.  Under an active :class:`~repro.cluster.
    faults.PageCorruption` plan it adds the quarantine protocol:

    * a probe that raises :class:`~repro.errors.StructureCorruptionError`
      quarantines the structure in the catalog (once), drops its cached
      pages, records the event in the :class:`FailureReport`'s quarantine
      ledger, and re-serves the probe from a :class:`_ScanRecoveryTable`
      built over the base file;
    * probes of a structure already quarantined (or demoted by the scrub
      worker) go straight to the recovery table without touching the sick
      pages;
    * structures with no registered definition (no base file to rebuild
      from) propagate the corruption error to the engine's failure policy.
    """
    injector = cluster.faults
    corrupting = injector is not None and injector.has_corruption
    sick = (catalog is not None and isinstance(file, BtreeFile)
            and not catalog.healthy(file.name))
    fresh = _has_deltas(catalog, dereferencer, file)
    if (catalog is None or runtime is None
            or not (corrupting or sick)
            or isinstance(dereferencer, ScanLookupDereferencer)):
        records = yield from resilient_dereference(
            cluster, config, metrics, stage, dereferencer, file, target,
            partition_id, executing_node, context,
            abort_check=abort_check)
        if fresh:
            assert catalog is not None
            records = yield from _charged_delta_merge(
                cluster, metrics, dereferencer, file, target,
                partition_id, context, catalog, records)
        return records
    name = file.name
    if (isinstance(file, BtreeFile) and not catalog.healthy(name)
            and _scan_recoverable(catalog, name)):
        records = yield from _recovery_probe(
            cluster, metrics, stage, dereferencer, file, target,
            partition_id, executing_node, context, catalog, runtime)
        if fresh:
            records = yield from _charged_delta_merge(
                cluster, metrics, dereferencer, file, target,
                partition_id, context, catalog, records)
        return records
    try:
        records = yield from resilient_dereference(
            cluster, config, metrics, stage, dereferencer, file, target,
            partition_id, executing_node, context,
            abort_check=abort_check)
        if fresh:
            records = yield from _charged_delta_merge(
                cluster, metrics, dereferencer, file, target,
                partition_id, context, catalog, records)
        return records
    except StructureCorruptionError as exc:
        metrics.corruptions_detected += 1
        if not (isinstance(file, BtreeFile)
                and _scan_recoverable(catalog, name)):
            raise
        if catalog.healthy(name):
            catalog.quarantine(name)
            metrics.quarantines += 1
            cluster.invalidate_cached_file(name)
            if failures is not None:
                failures.note_quarantine(FailureRecord(
                    stage=stage, node=executing_node,
                    partition=partition_id, kind="corruption",
                    error=str(exc), attempts=1, time=cluster.sim.now))
        records = yield from _recovery_probe(
            cluster, metrics, stage, dereferencer, file, target,
            partition_id, executing_node, context, catalog, runtime)
        if fresh:
            records = yield from _charged_delta_merge(
                cluster, metrics, dereferencer, file, target,
                partition_id, context, catalog, records)
        return records


def count_only_dereference(metrics: ExecutionMetrics, stage: int,
                           dereferencer: Dereferencer, file: File,
                           target: Target, partition_id: int,
                           context: Any, *,
                           catalog: Optional["StructureCatalog"] = None,
                           feedback: Optional[Any] = None
                           ) -> list[Record]:
    """The same fetch without a cluster: counts accesses, charges no time.

    Used by the in-memory reference executor (the correctness oracle and
    the record-access counter behind Figure 9).  With a catalog given,
    probes are delta-aware exactly like the cluster engines', so the
    oracle stays an oracle on a streaming lake.  ``feedback`` mirrors
    ``EngineConfig.feedback``: post-filter output counts are reported so
    adaptive runs behave identically on the reference path.
    """
    if isinstance(dereferencer, ScanLookupDereferencer):
        if dereferencer.adopt_cached(file):
            metrics.scan_table_cache_hits += 1
        first_probe = not dereferencer.has_table(file)
        records = dereferencer.fetch(file, target, partition_id)
        if first_probe:
            delta_bytes, __ = dereferencer.delta_bytes_on(
                file, list(range(file.num_partitions)))
            metrics.scan_stage_builds += 1
            metrics.scan_stage_bytes += file.total_bytes + delta_bytes
            dereferencer.publish_table(file, file.total_bytes + delta_bytes)
        metrics.count_fetch(stage, len(records), False, 0)
        records = dereferencer.apply_filter(records, context)
        if feedback is not None:
            feedback.observe(stage, len(records))
        return records
    records = dereferencer.fetch(file, target, partition_id)
    reads = _fetch_cost_reads(file, records, _REFERENCE_PAGE_SIZE)
    metrics.count_fetch(stage, len(records), isinstance(file, BtreeFile),
                        reads)
    records = dereferencer.apply_filter(records, context)
    if _has_deltas(catalog, dereferencer, file):
        assert catalog is not None
        records, __ = _merge_deltas(
            metrics, dereferencer, file, target, partition_id, context,
            catalog.delta_runs(file.name), records)
    if feedback is not None:
        feedback.observe(stage, len(records))
    return records


# --------------------------------------------------------------------------
# The batched access funnel
#
# Same-(file, partition) targets grouped by the engines are dispatched as
# one batch, with per-batch simulated cost (the documented charging rules):
#
# * **page walks dedupe across the batch**: each unique page is consulted
#   against the buffer pool once; all hits cost one combined RAM timeout,
#   all misses one :meth:`Disk.random_read_batch` (a single spindle slot
#   for ``ceil(misses / spindles)`` service times, every read accounted);
# * **uncached fetches amortize**: a B-tree batch pays one shared interior
#   walk plus the leaf pages of the *combined* result
#   (``probe_io_count(total)``); a heap batch pays the pages the combined
#   record bytes span;
# * **one network round trip per batch per remote owner**: request bytes
#   are ``pointer_bytes * len(batch)``, response bytes the combined
#   records;
# * **CPU charged per batch, sliver per record**: one ``process_tuples``
#   call over the combined record count;
# * **delta runs merge once per batch**: the merge consults each unmerged
#   run once (one batched read), not once per probe;
# * **one fault draw / corruption check sweep per batch**: a transient
#   fault or checksum failure fails (and retries) the batch as a unit.
#
# ``batch_size=1`` never reaches these functions — the engines route it
# through the per-record path above, which stays bit-identical.
# --------------------------------------------------------------------------


def batched_dereference(cluster: Cluster, config: EngineConfig,
                        metrics: ExecutionMetrics, stage: int,
                        dereferencer: Dereferencer, file: File,
                        probes: Sequence[Probe], partition_id: int,
                        executing_node: int) -> Iterator:
    """Process generator: one batch of dereferences against one partition.

    Returns one filtered record list per probe, in probe order."""
    if isinstance(dereferencer, ScanLookupDereferencer):
        outputs = yield from _scan_stage_dereference_batch(
            cluster, config, metrics, stage, dereferencer, file, probes,
            partition_id, executing_node)
        return outputs
    home = file.node_of(partition_id)
    owner = cluster.serving_node(home)
    start_time = cluster.sim.now
    fetched = [dereferencer.fetch(file, target, partition_id)
               for target, __ in probes]
    total_records = sum(len(records) for records in fetched)
    is_index = isinstance(file, BtreeFile)
    owner_disk = cluster.node(owner).disk
    page_size = owner_disk.spec.page_size

    injector = cluster.faults
    check = injector is not None and injector.has_corruption

    pool = cluster.node(owner).buffer_pool
    page_lists: Optional[list] = None
    if pool is not None and pool.enabled:
        page_lists = [_probe_page_ids(file, target, partition_id, page_size)
                      for target, __ in probes]
        if any(pages is None for pages in page_lists):
            page_lists = None
    hits = misses = 0
    if page_lists is not None:
        # Page walks dedupe across the batch: each unique page consults
        # the pool once, in first-touch order.
        unique = dict.fromkeys(
            page for pages in page_lists for page in pages)
        to_read = []
        for page in unique:
            if pool.lookup(page):
                hits += 1
                metrics.cache_hits += 1
            else:
                misses += 1
                metrics.cache_misses += 1
                to_read.append(page)
        if hits and config.cache_hit_time > 0:
            yield cluster.sim.timeout(hits * config.cache_hit_time)
        if misses:
            yield from owner_disk.random_read_batch(misses)
            # only reads that completed populate the cache
            for page in to_read:
                pool.insert(page, page_size)
        if check:
            for page in unique:
                if injector.page_corrupt(home, page):
                    raise _corruption_error(file, page)
        metrics.count_fetch(stage, total_records, is_index, misses)
    else:
        all_records = [r for records in fetched for r in records]
        reads = _fetch_cost_reads(file, all_records, page_size)
        metrics.count_fetch(stage, total_records, is_index, reads)
        if reads:
            yield from owner_disk.random_read_batch(reads)
        if check:
            seen = set()
            for target, __ in probes:
                for page in (_probe_page_ids(file, target, partition_id,
                                             page_size) or ()):
                    if page in seen:
                        continue
                    seen.add(page)
                    if injector.page_corrupt(home, page):
                        raise _corruption_error(file, page)

    if owner != executing_node:
        response_bytes = sum(r.size_bytes for records in fetched
                             for r in records)
        request_bytes = config.pointer_bytes * len(probes)
        metrics.count_remote(request_bytes + response_bytes)
        yield from cluster.network.request_response(
            executing_node, owner, request_bytes, response_bytes)

    if total_records:
        yield from cluster.node(executing_node).process_tuples(
            total_records)
    metrics.count_batch(len(probes), config.batch_size)
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=owner, num_records=total_records,
            start=start_time, end=cluster.sim.now,
            cache_hits=hits, cache_misses=misses,
            batch_size=len(probes)))
    return [dereferencer.apply_filter(records, context)
            for records, (__, context) in zip(fetched, probes)]


def _scan_stage_dereference_batch(cluster: Cluster, config: EngineConfig,
                                  metrics: ExecutionMetrics, stage: int,
                                  dereferencer: ScanLookupDereferencer,
                                  file: File, probes: Sequence[Probe],
                                  partition_id: int,
                                  executing_node: int) -> Iterator:
    """One batch of probes against a scan-backed stage's hash table."""
    start_time = cluster.sim.now
    yield from _scan_stage_build(cluster, metrics, dereferencer, file)
    fetched = [dereferencer.fetch(file, target, partition_id)
               for target, __ in probes]
    total_records = sum(len(records) for records in fetched)
    metrics.count_fetch(stage, total_records, False, 0)
    if total_records:
        yield from cluster.node(executing_node).process_tuples(
            total_records)
    metrics.count_batch(len(probes), config.batch_size)
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=executing_node, num_records=total_records,
            start=start_time, end=cluster.sim.now,
            batch_size=len(probes)))
    return [dereferencer.apply_filter(records, context)
            for records, (__, context) in zip(fetched, probes)]


def _timed_batched_dereference(cluster: Cluster, config: EngineConfig,
                               metrics: ExecutionMetrics, stage: int,
                               dereferencer: Dereferencer, file: File,
                               probes: Sequence[Probe], partition_id: int,
                               executing_node: int) -> Iterator:
    """One batch attempt raced against the invocation timeout (which is
    per dispatch, so a batch gets the same budget a single probe does)."""

    def attempt():
        try:
            outputs = yield from batched_dereference(
                cluster, config, metrics, stage, dereferencer, file,
                probes, partition_id, executing_node)
        except Exception as exc:  # captured: the waiter decides what to do
            return ("error", exc)
        return ("ok", outputs)

    sim = cluster.sim
    proc = sim.process(attempt(), name=f"deref-batch@{executing_node}")
    timer = sim.timeout(config.dereference_timeout)
    index, value = yield sim.any_of([proc, timer])
    if index == 1:
        raise DereferenceTimeout(
            f"batched dereference of {file.name!r} partition "
            f"{partition_id} ({len(probes)} probes) exceeded "
            f"{config.dereference_timeout}s on node {executing_node}")
    outcome, payload = value
    if outcome == "error":
        raise payload
    return payload


def resilient_dereference_batch(cluster: Cluster, config: EngineConfig,
                                metrics: ExecutionMetrics, stage: int,
                                dereferencer: Dereferencer, file: File,
                                probes: Sequence[Probe], partition_id: int,
                                executing_node: int,
                                abort_check: Optional[Callable[[], bool]]
                                = None) -> Iterator:
    """Fault-tolerant batched dereference.

    The batch is the retry unit: a transient fault, timeout, or crash
    re-runs the whole batch (one fault draw covered it, so no probe's
    result was kept).  The retry/backoff/re-route policy is exactly
    :func:`resilient_dereference`'s."""
    attempt = 0
    crash_hops = 0
    while True:
        if abort_check is not None and abort_check():
            return [[] for __ in probes]
        exec_node = cluster.serving_node(executing_node)
        try:
            if config.dereference_timeout > 0:
                outputs = yield from _timed_batched_dereference(
                    cluster, config, metrics, stage, dereferencer, file,
                    probes, partition_id, exec_node)
            else:
                outputs = yield from batched_dereference(
                    cluster, config, metrics, stage, dereferencer, file,
                    probes, partition_id, exec_node)
            return outputs
        except NodeCrashed as exc:
            crash_hops += 1
            metrics.count_fault("node-crash")
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         "fault:node-crash")
            if crash_hops > cluster.num_nodes:
                raise ExecutionError(
                    f"no surviving node could serve {file.name!r} "
                    f"partition {partition_id}") from exc
            continue
        except TransientIOError as exc:
            kind = classify_failure(exc)
            metrics.count_fault(kind)
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         f"fault:{kind}")
            if config.on_error == "fail":
                raise
            if attempt >= config.max_retries:
                raise ExecutionError(
                    f"batched dereference of {file.name!r} partition "
                    f"{partition_id} on node {exec_node} failed after "
                    f"{attempt} retr{'ies' if attempt != 1 else 'y'}"
                ) from exc
            delay = min(config.retry_backoff_cap,
                        config.retry_backoff_base * (2.0 ** attempt))
            if delay > 0 and cluster.faults is not None:
                delay *= cluster.faults.retry_jitter(exec_node, attempt)
            attempt += 1
            metrics.retries += 1
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         "retry")
            if delay > 0:
                yield cluster.sim.timeout(delay)


def _charged_delta_merge_batch(cluster: Cluster, metrics: ExecutionMetrics,
                               dereferencer: Dereferencer, file: File,
                               probes: Sequence[Probe], partition_id: int,
                               catalog: "StructureCatalog",
                               outputs: list) -> Iterator:
    """Delta merge for a whole batch: every probe merges, but the runs
    are read **once per batch** (one batched read over the consulted
    runs) instead of once per probe — the batched charging rule."""
    runs = catalog.delta_runs(file.name)
    consulted_max = 0
    merged = []
    for (target, context), records in zip(probes, outputs):
        records, consulted = _merge_deltas(
            metrics, dereferencer, file, target, partition_id, context,
            runs, records)
        consulted_max = max(consulted_max, consulted)
        merged.append(records)
    if consulted_max:
        owner = cluster.serving_node(file.node_of(partition_id))
        disk = cluster.node(owner).disk
        yield from disk.random_read_batch(consulted_max)
        metrics.random_reads += consulted_max
    return merged


def recovering_dereference_batch(cluster: Cluster, config: EngineConfig,
                                 metrics: ExecutionMetrics, stage: int,
                                 dereferencer: Dereferencer, file: File,
                                 probes: Sequence[Probe], partition_id: int,
                                 executing_node: int, *,
                                 catalog: Optional["StructureCatalog"]
                                 = None,
                                 failures: Optional[FailureReport] = None,
                                 runtime: Optional[dict] = None,
                                 abort_check: Optional[Callable[[], bool]]
                                 = None) -> Iterator:
    """Batched counterpart of :func:`recovering_dereference`.

    The healthy path dispatches the whole batch through
    :func:`resilient_dereference_batch` and merges deltas once per
    batch.  Under active corruption or against a sick structure the
    batch degrades to per-probe :func:`recovering_dereference` calls, so
    the quarantine protocol stays single-sourced (batching buys nothing
    on a path whose cost is dominated by the recovery scan anyway).

    Like the per-record funnel, reports the batch's total post-filter
    output into ``config.feedback`` when one is attached; the degraded
    path calls the per-record *impl* so each record is observed exactly
    once, here."""
    outputs = yield from _recovering_dereference_batch_impl(
        cluster, config, metrics, stage, dereferencer, file, probes,
        partition_id, executing_node, catalog=catalog, failures=failures,
        runtime=runtime, abort_check=abort_check)
    if config.feedback is not None:
        config.feedback.observe(
            stage, sum(len(records) for records in outputs))
    return outputs


def _recovering_dereference_batch_impl(
        cluster: Cluster, config: EngineConfig,
        metrics: ExecutionMetrics, stage: int,
        dereferencer: Dereferencer, file: File,
        probes: Sequence[Probe], partition_id: int,
        executing_node: int, *,
        catalog: Optional["StructureCatalog"] = None,
        failures: Optional[FailureReport] = None,
        runtime: Optional[dict] = None,
        abort_check: Optional[Callable[[], bool]] = None) -> Iterator:
    injector = cluster.faults
    corrupting = injector is not None and injector.has_corruption
    sick = (catalog is not None and isinstance(file, BtreeFile)
            and not catalog.healthy(file.name))
    if (catalog is not None and runtime is not None
            and (corrupting or sick)
            and not isinstance(dereferencer, ScanLookupDereferencer)):
        outputs = []
        for target, context in probes:
            records = yield from _recovering_dereference_impl(
                cluster, config, metrics, stage, dereferencer, file,
                target, partition_id, executing_node, context,
                catalog=catalog, failures=failures, runtime=runtime,
                abort_check=abort_check)
            outputs.append(records)
        return outputs
    outputs = yield from resilient_dereference_batch(
        cluster, config, metrics, stage, dereferencer, file, probes,
        partition_id, executing_node, abort_check=abort_check)
    if _has_deltas(catalog, dereferencer, file):
        assert catalog is not None
        outputs = yield from _charged_delta_merge_batch(
            cluster, metrics, dereferencer, file, probes, partition_id,
            catalog, outputs)
    return outputs


def count_only_dereference_batch(metrics: ExecutionMetrics, stage: int,
                                 dereferencer: Dereferencer, file: File,
                                 probes: Sequence[Probe],
                                 partition_id: int, *,
                                 catalog: Optional["StructureCatalog"]
                                 = None,
                                 capacity: int = 0,
                                 feedback: Optional[Any] = None) -> list:
    """Batched counterpart of :func:`count_only_dereference` (the
    simulation-free reference path): same fetches, batch-amortized read
    accounting, no simulated time."""
    if isinstance(dereferencer, ScanLookupDereferencer):
        if dereferencer.adopt_cached(file):
            metrics.scan_table_cache_hits += 1
        first_probe = not dereferencer.has_table(file)
        fetched = [dereferencer.fetch(file, target, partition_id)
                   for target, __ in probes]
        if first_probe:
            delta_bytes, __ = dereferencer.delta_bytes_on(
                file, list(range(file.num_partitions)))
            metrics.scan_stage_builds += 1
            metrics.scan_stage_bytes += file.total_bytes + delta_bytes
            dereferencer.publish_table(file, file.total_bytes + delta_bytes)
        total_records = sum(len(records) for records in fetched)
        metrics.count_fetch(stage, total_records, False, 0)
        metrics.count_batch(len(probes), capacity)
        outputs = [dereferencer.apply_filter(records, context)
                   for records, (__, context) in zip(fetched, probes)]
        if feedback is not None:
            feedback.observe(
                stage, sum(len(records) for records in outputs))
        return outputs
    fetched = [dereferencer.fetch(file, target, partition_id)
               for target, __ in probes]
    all_records = [r for records in fetched for r in records]
    reads = _fetch_cost_reads(file, all_records, _REFERENCE_PAGE_SIZE)
    metrics.count_fetch(stage, len(all_records),
                        isinstance(file, BtreeFile), reads)
    metrics.count_batch(len(probes), capacity)
    outputs = [dereferencer.apply_filter(records, context)
               for records, (__, context) in zip(fetched, probes)]
    if _has_deltas(catalog, dereferencer, file):
        assert catalog is not None
        runs = catalog.delta_runs(file.name)
        outputs = [
            _merge_deltas(metrics, dereferencer, file, target,
                          partition_id, context, runs, records)[0]
            for (target, context), records in zip(probes, outputs)]
    if feedback is not None:
        feedback.observe(stage, sum(len(records) for records in outputs))
    return outputs
