"""Shared storage-access logic with simulated cost charging.

Every engine funnels its dereferences through :func:`simulated_dereference`,
which performs the *real* data-plane fetch (so results are correct) while
charging virtual time for it:

* random reads on the disk of the node that owns the partition (B-tree
  probes pay one read per page traversed; base-file lookups one per heap
  page the fetched record bytes span) — and when the owning node carries a
  :class:`~repro.storage.cache.BufferPool`, each traversed page consults
  it first, so hits cost RAM service time instead of a disk read;
* a network round trip when the executing node is not the owner;
* a sliver of CPU on the executing node for filtering fetched records.

This module is also where physical-plan access paths meet the engines:
scan-backed stages (a :class:`~repro.plan.scanstage.
ScanLookupDereferencer` emitted by the per-stage planner) are recognized
here and charged as one parallel sequential pass that builds a
replicated hash table — every node scans its local partitions, spends
build CPU, and ships its share to peers — after which each probe costs
only in-memory lookup CPU.  Because every engine funnels through this
function, SMPE, the partitioned engine, and the reference executor all
run mixed scan/index jobs without any engine-side changes.

Partition resolution (:func:`resolve_partitions`) also implements the
structural pruning a range partitioner affords to range probes.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Union

from repro.cluster.cluster import Cluster
from repro.cluster.disk import DiskSpec
from repro.config import EngineConfig
from repro.core.functions import Dereferencer
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.metrics import ExecutionMetrics
from repro.engine.trace import TraceEvent
from repro.errors import (DereferenceTimeout, ExecutionError, FaultError,
                          NodeCrashed, TransientIOError)
from repro.plan.scanstage import ScanLookupDereferencer
from repro.storage.cache import PageId
from repro.storage.files import BtreeFile, File, PartitionedFile
from repro.storage.partitioner import RangePartitioner

__all__ = ["resolve_partitions", "initial_probe_pids",
           "simulated_dereference", "resilient_dereference",
           "count_only_dereference", "classify_failure"]

Target = Union[Pointer, PointerRange]


def resolve_partitions(file: File, target: Target,
                       executing_node: Optional[int] = None,
                       local_only: bool = False) -> list[int]:
    """Partition ids a dereference must touch.

    * ``local_only`` restricts to partitions on the executing node — this is
      Algorithm 1's ``SETPARTITION(input, LOCAL)`` after a broadcast, and
      also how each node serves its share of a job-level range probe on a
      local index.
    * A keyed target resolves to exactly one partition.
    * A partition-less range over a *range-partitioned* structure prunes to
      the partitions intersecting the range.
    """
    if getattr(file, "scope", None) == "replicated":
        # A fully replicated index is probed on the local replica; the
        # simulation-free reference executor uses replica 0.
        if executing_node is not None:
            return file.partitions_on_node(executing_node)
        return [0]
    if local_only:
        if executing_node is None:
            raise ExecutionError("local-only resolution needs a node id")
        pids = file.partitions_on_node(executing_node)
        if (isinstance(target, PointerRange)
                and isinstance(file.partitioner, RangePartitioner)):
            keep = set(file.partitioner.partition_range(target.low,
                                                        target.high))
            pids = [pid for pid in pids if pid in keep]
        return pids
    if getattr(file, "scope", None) == "local":
        # A local secondary index partitions by the *base* key, so an
        # index-keyed probe cannot be routed: it must touch every
        # partition (which is exactly what makes the scheme "local").
        # The engines' broadcast path covers the per-node parallel case;
        # this covers direct keyed probes.
        return list(range(file.num_partitions))
    if target.partition_key is not None:
        return [file.partition_of_key(target.partition_key)]
    if (isinstance(target, PointerRange)
            and isinstance(file.partitioner, RangePartitioner)):
        return list(file.partitioner.partition_range(target.low,
                                                     target.high))
    return list(range(file.num_partitions))


def initial_probe_pids(file: File, target: Target,
                       node_id: int) -> list[int]:
    """Stage-0 routing: the partitions node ``node_id`` must probe for one
    job input.

    * broadcast targets and probes of *local*-scope indexes: this node's
      local partitions (every node serves its share, range-pruned where
      the partitioner allows);
    * replicated indexes: this node's replica;
    * keyed targets on routable structures: the owning partition, and only
      on the owning node (other nodes get nothing).
    """
    scope = getattr(file, "scope", None)
    if scope == "replicated":
        # Every replica holds everything, so exactly one node serves each
        # job input; keyed inputs spread across replicas by key hash.
        key = (target.partition_key if target.partition_key is not None
               else getattr(target, "key", None))
        serving = (file.partition_of_key(key) % file.num_partitions
                   if key is not None else 0)
        if file.node_of(serving) != node_id:
            return []
        return [serving]
    if target.partition_key is None or scope == "local":
        return resolve_partitions(file, target, executing_node=node_id,
                                  local_only=True)
    pid = file.partition_of_key(target.partition_key)
    if file.node_of(pid) != node_id:
        return []
    return [pid]


#: page size assumed when no cluster supplies a disk (reference executor)
_REFERENCE_PAGE_SIZE = DiskSpec().page_size


def _fetch_cost_reads(file: File, records: Sequence[Record],
                      page_size: int) -> int:
    """Random reads one fetch costs on the owning node (uncached model)."""
    if isinstance(file, BtreeFile):
        return file.probe_io_count(len(records))
    # Base-file lookup: records under one key pack contiguously in the
    # heap, so the fetch reads as many pages as the record bytes span —
    # minimum one (a miss still reads the page that would have held it).
    total_bytes = sum(record.size_bytes for record in records)
    return max(1, -(-total_bytes // page_size))


def _probe_page_ids(file: File, target: Target,
                    partition_id: int, page_size: int
                    ) -> Optional[list[PageId]]:
    """The pages one fetch traverses, or ``None`` when the structure
    cannot enumerate them (fall back to the uncached cost model)."""
    if isinstance(file, BtreeFile):
        return file.probe_page_ids(partition_id, target)
    if isinstance(file, PartitionedFile) and isinstance(target, Pointer):
        return file.probe_page_ids(partition_id, target, page_size)
    return None


def simulated_dereference(cluster: Cluster, config: EngineConfig,
                          metrics: ExecutionMetrics, stage: int,
                          dereferencer: Dereferencer, file: File,
                          target: Target, partition_id: int,
                          executing_node: int,
                          context: Any) -> Iterator:
    """Process generator: one dereference against one partition.

    Charges IO/network/CPU in virtual time and *returns* the filtered
    records (use with ``yield from``).

    The owning node is resolved through :meth:`Cluster.serving_node`, so
    after a permanent node crash the IO lands on the survivor that adopted
    the dead node's partitions (replica promotion) instead of a dead disk.
    """
    if isinstance(dereferencer, ScanLookupDereferencer):
        records = yield from _scan_stage_dereference(
            cluster, metrics, stage, dereferencer, file, target,
            partition_id, executing_node, context)
        return records
    owner = cluster.serving_node(file.node_of(partition_id))
    start_time = cluster.sim.now
    records = dereferencer.fetch(file, target, partition_id)
    is_index = isinstance(file, BtreeFile)
    owner_disk = cluster.node(owner).disk
    page_size = owner_disk.spec.page_size

    pool = cluster.node(owner).buffer_pool
    pages = None
    if pool is not None and pool.enabled:
        pages = _probe_page_ids(file, target, partition_id, page_size)
    hits = misses = 0
    if pages is not None:
        # Page-granular path: each traversed page consults the owner's
        # buffer pool.  A hit costs RAM service time; a miss pays the
        # disk's random read and then caches the page.  Page reads within
        # one probe are dependent (parent -> child, leaf -> next leaf), so
        # they serialize inside this simulated thread.
        for page in pages:
            if pool.lookup(page):
                hits += 1
                metrics.cache_hits += 1
                if config.cache_hit_time > 0:
                    yield cluster.sim.timeout(config.cache_hit_time)
            else:
                misses += 1
                metrics.cache_misses += 1
                yield from owner_disk.random_read()
                # only a read that completed populates the cache
                pool.insert(page, page_size)
        metrics.count_fetch(stage, len(records), is_index, misses)
    else:
        reads = _fetch_cost_reads(file, records, page_size)
        metrics.count_fetch(stage, len(records), is_index, reads)
        for __ in range(reads):
            # Dependent page reads serialize inside this simulated thread.
            yield from owner_disk.random_read()

    if owner != executing_node:
        response_bytes = sum(r.size_bytes for r in records)
        metrics.count_remote(config.pointer_bytes + response_bytes)
        yield from cluster.network.request_response(
            executing_node, owner, config.pointer_bytes, response_bytes)

    if records:
        yield from cluster.node(executing_node).process_tuples(len(records))
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=owner, num_records=len(records),
            start=start_time, end=cluster.sim.now,
            cache_hits=hits, cache_misses=misses))
    return dereferencer.apply_filter(records, context)


def _scan_stage_build(cluster: Cluster, metrics: ExecutionMetrics,
                      dereferencer: ScanLookupDereferencer,
                      file: File) -> Iterator:
    """Materialize a scan-backed stage's replicated hash table, once.

    The first probe pays for it: every node scans its local partitions
    sequentially (in parallel), spends one core's build CPU, and ships
    its share of the table to peers — the cost shape of a grace hash
    join's build side.  Concurrent probes wait on the build event;
    later probes see ``ready`` and pay nothing.
    """
    state = dereferencer.runtime.setdefault(id(cluster), {})
    if state.get("ready"):
        return
    event = state.get("event")
    if event is not None:
        yield event
        return
    event = cluster.sim.event()
    state["event"] = event

    def build_on(node_id: int):
        serving = cluster.serving_node(node_id)
        node = cluster.node(serving)
        nbytes = rows = 0
        for pid in file.partitions_on_node(node_id):
            nbytes += file.partition_bytes(pid)
            rows += sum(1 for __ in file.scan_partition(pid))
        if nbytes:
            yield from node.disk.sequential_read(nbytes)
        if rows:
            yield from node.process_tuples(rows)
        if cluster.num_nodes > 1 and nbytes:
            shipped = int(nbytes * (cluster.num_nodes - 1)
                          / cluster.num_nodes)
            if shipped:
                yield from cluster.network.transfer(
                    serving, (serving + 1) % cluster.num_nodes, shipped)

    procs = [cluster.launch(build_on(n), name=f"scan-stage@{n}")
             for n in range(cluster.num_nodes)]
    yield cluster.sim.all_of(procs)
    dereferencer.table_for(file)
    metrics.scan_stage_builds += 1
    metrics.scan_stage_bytes += file.total_bytes
    state["ready"] = True
    event.succeed()


def _scan_stage_dereference(cluster: Cluster, metrics: ExecutionMetrics,
                            stage: int,
                            dereferencer: ScanLookupDereferencer,
                            file: File, target: Target, partition_id: int,
                            executing_node: int, context: Any) -> Iterator:
    """One probe of a scan-backed stage: build-once, then memory lookups."""
    start_time = cluster.sim.now
    yield from _scan_stage_build(cluster, metrics, dereferencer, file)
    records = dereferencer.fetch(file, target, partition_id)
    metrics.count_fetch(stage, len(records), False, 0)
    if records:
        yield from cluster.node(executing_node).process_tuples(len(records))
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=executing_node, num_records=len(records),
            start=start_time, end=cluster.sim.now))
    return dereferencer.apply_filter(records, context)


def classify_failure(exc: BaseException) -> str:
    """FailureRecord kind for an exception the resilience layer caught."""
    if isinstance(exc, ExecutionError) and isinstance(exc.__cause__,
                                                      FaultError):
        exc = exc.__cause__
    if isinstance(exc, DereferenceTimeout):
        return "timeout"
    if isinstance(exc, NodeCrashed):
        return "node-crash"
    if isinstance(exc, TransientIOError):
        return "transient-io"
    return "user-error"


def _trace_fault(cluster: Cluster, metrics: ExecutionMetrics, stage: int,
                 node: int, partition_id: int, kind: str) -> None:
    if metrics.trace is not None:
        now = cluster.sim.now
        metrics.trace.append(TraceEvent(
            stage=stage, node=node, partition=partition_id,
            owner_node=node, num_records=0, start=now, end=now, kind=kind))


def _timed_dereference(cluster: Cluster, config: EngineConfig,
                       metrics: ExecutionMetrics, stage: int,
                       dereferencer: Dereferencer, file: File,
                       target: Target, partition_id: int,
                       executing_node: int, context: Any) -> Iterator:
    """One dereference attempt raced against the invocation timeout.

    The attempt runs as its own simulated process so the caller can
    abandon it: when the timer wins, the in-flight IO keeps occupying its
    resources (as a real abandoned request would) but its records and any
    late exception are discarded, and :class:`DereferenceTimeout` is
    raised for the retry loop to handle.
    """

    def attempt():
        try:
            records = yield from simulated_dereference(
                cluster, config, metrics, stage, dereferencer, file, target,
                partition_id, executing_node, context)
        except Exception as exc:  # captured: the waiter decides what to do
            return ("error", exc)
        return ("ok", records)

    sim = cluster.sim
    proc = sim.process(attempt(), name=f"deref-attempt@{executing_node}")
    timer = sim.timeout(config.dereference_timeout)
    index, value = yield sim.any_of([proc, timer])
    if index == 1:
        raise DereferenceTimeout(
            f"dereference of {file.name!r} partition {partition_id} "
            f"exceeded {config.dereference_timeout}s on node "
            f"{executing_node}")
    outcome, payload = value
    if outcome == "error":
        raise payload
    return payload


def resilient_dereference(cluster: Cluster, config: EngineConfig,
                          metrics: ExecutionMetrics, stage: int,
                          dereferencer: Dereferencer, file: File,
                          target: Target, partition_id: int,
                          executing_node: int, context: Any) -> Iterator:
    """Fault-tolerant dereference: retries, timeouts, crash re-routing.

    The engines' resilience path around :func:`simulated_dereference`:

    * **transient faults** (IO errors, network drops) and **timeouts** are
      retried with capped exponential backoff *in simulated time*, up to
      ``config.max_retries``, unless ``on_error='fail'`` (then the first
      fault propagates immediately); exhaustion raises
      :class:`ExecutionError` with the final fault chained as its cause;
    * **node crashes** re-route: the executing side re-resolves through
      :meth:`Cluster.serving_node` each attempt, and the owner side is
      re-resolved inside :func:`simulated_dereference`, so in-flight work
      moves to survivors without consuming the retry budget;
    * user-code exceptions are never retried — they propagate unchanged.

    When a fault plan is not injected this adds zero simulated events and
    is byte-for-byte identical to calling :func:`simulated_dereference`.
    """
    attempt = 0
    crash_hops = 0
    while True:
        exec_node = cluster.serving_node(executing_node)
        try:
            if config.dereference_timeout > 0:
                records = yield from _timed_dereference(
                    cluster, config, metrics, stage, dereferencer, file,
                    target, partition_id, exec_node, context)
            else:
                records = yield from simulated_dereference(
                    cluster, config, metrics, stage, dereferencer, file,
                    target, partition_id, exec_node, context)
            return records
        except NodeCrashed as exc:
            crash_hops += 1
            metrics.count_fault("node-crash")
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         "fault:node-crash")
            if crash_hops > cluster.num_nodes:
                raise ExecutionError(
                    f"no surviving node could serve {file.name!r} "
                    f"partition {partition_id}") from exc
            continue
        except TransientIOError as exc:
            kind = classify_failure(exc)
            metrics.count_fault(kind)
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         f"fault:{kind}")
            if config.on_error == "fail":
                raise
            if attempt >= config.max_retries:
                raise ExecutionError(
                    f"dereference of {file.name!r} partition {partition_id} "
                    f"on node {exec_node} failed after {attempt} "
                    f"retr{'ies' if attempt != 1 else 'y'}") from exc
            delay = min(config.retry_backoff_cap,
                        config.retry_backoff_base * (2.0 ** attempt))
            attempt += 1
            metrics.retries += 1
            _trace_fault(cluster, metrics, stage, exec_node, partition_id,
                         "retry")
            if delay > 0:
                yield cluster.sim.timeout(delay)


def count_only_dereference(metrics: ExecutionMetrics, stage: int,
                           dereferencer: Dereferencer, file: File,
                           target: Target, partition_id: int,
                           context: Any) -> list[Record]:
    """The same fetch without a cluster: counts accesses, charges no time.

    Used by the in-memory reference executor (the correctness oracle and
    the record-access counter behind Figure 9).
    """
    if isinstance(dereferencer, ScanLookupDereferencer):
        first_probe = not dereferencer.has_table(file)
        records = dereferencer.fetch(file, target, partition_id)
        if first_probe:
            metrics.scan_stage_builds += 1
            metrics.scan_stage_bytes += file.total_bytes
        metrics.count_fetch(stage, len(records), False, 0)
        return dereferencer.apply_filter(records, context)
    records = dereferencer.fetch(file, target, partition_id)
    reads = _fetch_cost_reads(file, records, _REFERENCE_PAGE_SIZE)
    metrics.count_fetch(stage, len(records), isinstance(file, BtreeFile),
                        reads)
    return dereferencer.apply_filter(records, context)
