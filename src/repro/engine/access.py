"""Shared storage-access logic with simulated cost charging.

Every engine funnels its dereferences through :func:`simulated_dereference`,
which performs the *real* data-plane fetch (so results are correct) while
charging virtual time for it:

* random reads on the disk of the node that owns the partition (B-tree
  probes pay one read per leaf touched; base-file lookups one per record);
* a network round trip when the executing node is not the owner;
* a sliver of CPU on the executing node for filtering fetched records.

Partition resolution (:func:`resolve_partitions`) also implements the
structural pruning a range partitioner affords to range probes.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Union

from repro.cluster.cluster import Cluster
from repro.config import EngineConfig
from repro.core.functions import Dereferencer
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.metrics import ExecutionMetrics
from repro.engine.trace import TraceEvent
from repro.errors import ExecutionError
from repro.storage.files import BtreeFile, File
from repro.storage.partitioner import RangePartitioner

__all__ = ["resolve_partitions", "initial_probe_pids",
           "simulated_dereference", "count_only_dereference"]

Target = Union[Pointer, PointerRange]


def resolve_partitions(file: File, target: Target,
                       executing_node: Optional[int] = None,
                       local_only: bool = False) -> list[int]:
    """Partition ids a dereference must touch.

    * ``local_only`` restricts to partitions on the executing node — this is
      Algorithm 1's ``SETPARTITION(input, LOCAL)`` after a broadcast, and
      also how each node serves its share of a job-level range probe on a
      local index.
    * A keyed target resolves to exactly one partition.
    * A partition-less range over a *range-partitioned* structure prunes to
      the partitions intersecting the range.
    """
    if getattr(file, "scope", None) == "replicated":
        # A fully replicated index is probed on the local replica; the
        # simulation-free reference executor uses replica 0.
        if executing_node is not None:
            return file.partitions_on_node(executing_node)
        return [0]
    if local_only:
        if executing_node is None:
            raise ExecutionError("local-only resolution needs a node id")
        pids = file.partitions_on_node(executing_node)
        if (isinstance(target, PointerRange)
                and isinstance(file.partitioner, RangePartitioner)):
            keep = set(file.partitioner.partition_range(target.low,
                                                        target.high))
            pids = [pid for pid in pids if pid in keep]
        return pids
    if getattr(file, "scope", None) == "local":
        # A local secondary index partitions by the *base* key, so an
        # index-keyed probe cannot be routed: it must touch every
        # partition (which is exactly what makes the scheme "local").
        # The engines' broadcast path covers the per-node parallel case;
        # this covers direct keyed probes.
        return list(range(file.num_partitions))
    if target.partition_key is not None:
        return [file.partition_of_key(target.partition_key)]
    if (isinstance(target, PointerRange)
            and isinstance(file.partitioner, RangePartitioner)):
        return list(file.partitioner.partition_range(target.low,
                                                     target.high))
    return list(range(file.num_partitions))


def initial_probe_pids(file: File, target: Target,
                       node_id: int) -> list[int]:
    """Stage-0 routing: the partitions node ``node_id`` must probe for one
    job input.

    * broadcast targets and probes of *local*-scope indexes: this node's
      local partitions (every node serves its share, range-pruned where
      the partitioner allows);
    * replicated indexes: this node's replica;
    * keyed targets on routable structures: the owning partition, and only
      on the owning node (other nodes get nothing).
    """
    scope = getattr(file, "scope", None)
    if scope == "replicated":
        # Every replica holds everything, so exactly one node serves each
        # job input; keyed inputs spread across replicas by key hash.
        key = (target.partition_key if target.partition_key is not None
               else getattr(target, "key", None))
        serving = (file.partition_of_key(key) % file.num_partitions
                   if key is not None else 0)
        if file.node_of(serving) != node_id:
            return []
        return [serving]
    if target.partition_key is None or scope == "local":
        return resolve_partitions(file, target, executing_node=node_id,
                                  local_only=True)
    pid = file.partition_of_key(target.partition_key)
    if file.node_of(pid) != node_id:
        return []
    return [pid]


def _fetch_cost_reads(file: File, num_records: int) -> int:
    """Random reads one fetch costs on the owning node."""
    if isinstance(file, BtreeFile):
        return file.probe_io_count(num_records)
    # Base-file lookup: one page read per record, minimum one (a miss still
    # reads the page that would have held it).
    return max(1, num_records)


def simulated_dereference(cluster: Cluster, config: EngineConfig,
                          metrics: ExecutionMetrics, stage: int,
                          dereferencer: Dereferencer, file: File,
                          target: Target, partition_id: int,
                          executing_node: int,
                          context: Any) -> Iterator:
    """Process generator: one dereference against one partition.

    Charges IO/network/CPU in virtual time and *returns* the filtered
    records (use with ``yield from``).
    """
    owner = file.node_of(partition_id)
    start_time = cluster.sim.now
    records = dereferencer.fetch(file, target, partition_id)
    is_index = isinstance(file, BtreeFile)
    reads = _fetch_cost_reads(file, len(records))
    metrics.count_fetch(stage, len(records), is_index, reads)

    owner_disk = cluster.node(owner).disk
    for __ in range(reads):
        # Page reads within one probe are dependent (parent leaf -> next
        # leaf), so they serialize inside this simulated thread.
        yield from owner_disk.random_read()

    if owner != executing_node:
        response_bytes = sum(r.size_bytes for r in records)
        metrics.count_remote(config.pointer_bytes + response_bytes)
        yield from cluster.network.request_response(
            executing_node, owner, config.pointer_bytes, response_bytes)

    if records:
        yield from cluster.node(executing_node).process_tuples(len(records))
    if metrics.trace is not None:
        metrics.trace.append(TraceEvent(
            stage=stage, node=executing_node, partition=partition_id,
            owner_node=owner, num_records=len(records),
            start=start_time, end=cluster.sim.now))
    return dereferencer.apply_filter(records, context)


def count_only_dereference(metrics: ExecutionMetrics, stage: int,
                           dereferencer: Dereferencer, file: File,
                           target: Target, partition_id: int,
                           context: Any) -> list[Record]:
    """The same fetch without a cluster: counts accesses, charges no time.

    Used by the in-memory reference executor (the correctness oracle and
    the record-access counter behind Figure 9).
    """
    records = dereferencer.fetch(file, target, partition_id)
    reads = _fetch_cost_reads(file, len(records))
    metrics.count_fetch(stage, len(records), isinstance(file, BtreeFile),
                        reads)
    return dereferencer.apply_filter(records, context)
