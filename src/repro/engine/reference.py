"""The in-memory reference executor: the correctness oracle.

Executes a Reference-Dereference job synchronously with no cluster and no
virtual time — just the data plane.  Every engine must produce exactly this
row set; the integration tests enforce it.  Because it still counts record
accesses through the shared accounting path, it is also the cheap way to
produce Figure 9's access-count comparison.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from repro.core.catalog import StructureCatalog
from repro.core.functions import Dereferencer, Referencer
from repro.core.job import Job, OutputRow
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.access import (count_only_dereference, resolve_partitions,
                                 stamp_watermark)
from repro.engine.metrics import ExecutionMetrics, JobResult
from repro.errors import ExecutionError

__all__ = ["ReferenceExecutor"]


class ReferenceExecutor:
    """Sequential, simulation-free job execution."""

    def __init__(self, catalog: StructureCatalog) -> None:
        self.catalog = catalog

    def execute(self, job: Job, limit: Optional[int] = None) -> JobResult:
        metrics = ExecutionMetrics()
        stamp_watermark(metrics, self.catalog)
        results: list[OutputRow] = []
        self._limit = limit
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        for target in job.inputs:
            if self._done(results):
                break
            pids = resolve_partitions(file, target)
            for pid in pids:
                if self._done(results):
                    break
                records = count_only_dereference(
                    metrics, 0, dereferencer, file, target, pid, {},
                    catalog=self.catalog)
                for record in records:
                    self._chain(job, metrics, results, 1, record, {})
        if limit is not None and len(results) > limit:
            del results[limit:]
        return JobResult(results, metrics)

    def _done(self, results: list[OutputRow]) -> bool:
        limit = getattr(self, "_limit", None)
        return limit is not None and len(results) >= limit

    def _chain(self, job: Job, metrics: ExecutionMetrics,
               results: list[OutputRow], stage: int,
               payload: Union[Record, Pointer, PointerRange],
               context: Mapping[str, Any]) -> None:
        if self._done(results):
            return
        function = job.function_at(stage)
        if function is None:
            if isinstance(payload, Record):
                results.append(OutputRow(payload, context))
            return

        if isinstance(function, Referencer):
            if not isinstance(payload, Record):
                raise ExecutionError(
                    f"stage {stage} expects records, got "
                    f"{type(payload).__name__}")
            metrics.count_invocation(stage)
            for pointer, new_context in function.reference(payload, context):
                self._chain(job, metrics, results, stage + 1, pointer,
                            new_context)
            return

        if not isinstance(payload, (Pointer, PointerRange)):
            raise ExecutionError(
                f"stage {stage} expects pointers, got "
                f"{type(payload).__name__}")
        file = self.catalog.resolve(function.file_name)
        for pid in resolve_partitions(file, payload):
            records = count_only_dereference(
                metrics, stage, function, file, payload, pid, context,
                catalog=self.catalog)
            for record in records:
                self._chain(job, metrics, results, stage + 1, record,
                            context)
