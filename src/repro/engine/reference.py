"""The in-memory reference executor: the correctness oracle.

Executes a Reference-Dereference job synchronously with no cluster and no
virtual time — just the data plane.  Every engine must produce exactly this
row set; the integration tests enforce it.  Because it still counts record
accesses through the shared accounting path, it is also the cheap way to
produce Figure 9's access-count comparison.

With ``EngineConfig(batch_size=N)`` for ``N > 1`` the executor switches
from the depth-first per-record walk to a breadth-first batched walk:
each stage's pointers are grouped by target partition and dispatched in
chunks of up to ``N`` through the batched access funnel — same rows,
batch-amortized read accounting.  ``batch_size=1`` (the default) keeps
the original per-record path bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from repro.config import EngineConfig
from repro.core.catalog import StructureCatalog
from repro.core.functions import Dereferencer, Referencer
from repro.core.job import Job, OutputRow
from repro.core.pointers import Pointer, PointerRange
from repro.core.records import Record
from repro.engine.access import (count_only_dereference,
                                 count_only_dereference_batch,
                                 resolve_partitions, stamp_watermark)
from repro.engine.metrics import ExecutionMetrics, JobResult
from repro.errors import ExecutionError

__all__ = ["ReferenceExecutor"]


class ReferenceExecutor:
    """Sequential, simulation-free job execution."""

    def __init__(self, catalog: StructureCatalog,
                 config: Optional[EngineConfig] = None) -> None:
        self.catalog = catalog
        self.config = config

    @property
    def _feedback(self):
        return None if self.config is None else self.config.feedback

    def execute(self, job: Job, limit: Optional[int] = None) -> JobResult:
        batch_size = 1 if self.config is None else self.config.batch_size
        if batch_size > 1:
            return self._execute_batched(job, batch_size, limit)
        metrics = ExecutionMetrics()
        stamp_watermark(metrics, self.catalog)
        results: list[OutputRow] = []
        self._limit = limit
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        for target in job.inputs:
            if self._done(results):
                break
            pids = resolve_partitions(file, target)
            for pid in pids:
                if self._done(results):
                    break
                records = count_only_dereference(
                    metrics, 0, dereferencer, file, target, pid, {},
                    catalog=self.catalog, feedback=self._feedback)
                for record in records:
                    self._chain(job, metrics, results, 1, record, {})
        if limit is not None and len(results) > limit:
            del results[limit:]
        return JobResult(results, metrics)

    def _execute_batched(self, job: Job, batch_size: int,
                         limit: Optional[int]) -> JobResult:
        """Breadth-first batched walk: same rows, amortized accounting."""
        metrics = ExecutionMetrics()
        stamp_watermark(metrics, self.catalog)
        results: list[OutputRow] = []
        dereferencer = job.functions[0]
        assert isinstance(dereferencer, Dereferencer)
        file = self.catalog.resolve(dereferencer.file_name)
        frontier = self._deref_stage_batched(
            metrics, 0, dereferencer, file, batch_size,
            [(target, {}) for target in job.inputs])
        stage = 1
        while frontier:
            function = job.function_at(stage)
            if function is None:
                results.extend(OutputRow(payload, context)
                               for payload, context in frontier
                               if isinstance(payload, Record))
                break
            if isinstance(function, Referencer):
                next_frontier: list = []
                for payload, context in frontier:
                    if not isinstance(payload, Record):
                        raise ExecutionError(
                            f"stage {stage} expects records, got "
                            f"{type(payload).__name__}")
                    metrics.count_invocation(stage)
                    next_frontier.extend(function.reference(payload,
                                                            context))
                frontier = next_frontier
            else:
                for payload, __ in frontier:
                    if not isinstance(payload, (Pointer, PointerRange)):
                        raise ExecutionError(
                            f"stage {stage} expects pointers, got "
                            f"{type(payload).__name__}")
                file = self.catalog.resolve(function.file_name)
                frontier = self._deref_stage_batched(
                    metrics, stage, function, file, batch_size, frontier)
            stage += 1
        if limit is not None and len(results) > limit:
            del results[limit:]
        return JobResult(results, metrics)

    def _deref_stage_batched(self, metrics: ExecutionMetrics, stage: int,
                             function: Dereferencer, file, batch_size: int,
                             frontier: list) -> list:
        """Group one stage's targets by partition, dispatch in batches."""
        groups: dict[int, list] = {}
        for target, context in frontier:
            for pid in resolve_partitions(file, target):
                groups.setdefault(pid, []).append((target, context))
        out: list = []
        for pid, probes in groups.items():
            for i in range(0, len(probes), batch_size):
                chunk = probes[i:i + batch_size]
                outputs = count_only_dereference_batch(
                    metrics, stage, function, file, chunk, pid,
                    catalog=self.catalog, capacity=batch_size,
                    feedback=self._feedback)
                for (__, context), records in zip(chunk, outputs):
                    out.extend((record, context) for record in records)
        return out

    def _done(self, results: list[OutputRow]) -> bool:
        limit = getattr(self, "_limit", None)
        return limit is not None and len(results) >= limit

    def _chain(self, job: Job, metrics: ExecutionMetrics,
               results: list[OutputRow], stage: int,
               payload: Union[Record, Pointer, PointerRange],
               context: Mapping[str, Any]) -> None:
        if self._done(results):
            return
        function = job.function_at(stage)
        if function is None:
            if isinstance(payload, Record):
                results.append(OutputRow(payload, context))
            return

        if isinstance(function, Referencer):
            if not isinstance(payload, Record):
                raise ExecutionError(
                    f"stage {stage} expects records, got "
                    f"{type(payload).__name__}")
            metrics.count_invocation(stage)
            for pointer, new_context in function.reference(payload, context):
                self._chain(job, metrics, results, stage + 1, pointer,
                            new_context)
            return

        if not isinstance(payload, (Pointer, PointerRange)):
            raise ExecutionError(
                f"stage {stage} expects pointers, got "
                f"{type(payload).__name__}")
        file = self.catalog.resolve(function.file_name)
        for pid in resolve_partitions(file, payload):
            records = count_only_dereference(
                metrics, stage, function, file, payload, pid, context,
                catalog=self.catalog, feedback=self._feedback)
            for record in records:
                self._chain(job, metrics, results, stage + 1, record,
                            context)
