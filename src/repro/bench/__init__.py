"""Benchmark support: sweep tables and formatting helpers."""

from repro.bench.harness import (
    SweepTable,
    format_factor,
    format_seconds,
    geometric_mean,
)

__all__ = ["SweepTable", "format_factor", "format_seconds",
           "geometric_mean"]
