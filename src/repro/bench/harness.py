"""Benchmark harness: sweep runners and table formatting.

Every benchmark in ``benchmarks/`` funnels its measurements through
:class:`SweepTable`, which prints the same rows/series the paper's figures
report (who wins, by what factor, where the crossover falls) in a stable,
diff-friendly plain-text format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = ["SweepTable", "format_seconds", "format_factor", "geometric_mean"]


def format_seconds(seconds: float) -> str:
    """Human-scaled time: 1.23s / 45.6ms / 789us."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def format_factor(factor: float) -> str:
    """A speedup/slowdown factor: '12.3x' (or '-' for undefined)."""
    if factor != factor or factor in (float("inf"), 0.0):  # NaN/inf guard
        return "-"
    return f"{factor:.1f}x"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for empty input)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for value in positives:
        product *= value
    return product ** (1.0 / len(positives))


@dataclass
class SweepTable:
    """Collects rows of a parameter sweep and renders a fixed-width table."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} "
                "columns")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, by header name."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]]
        cells.extend([_render_cell(value) for value in row]
                     for row in self.rows)
        widths = [max(len(row[i]) for row in cells)
                  for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
