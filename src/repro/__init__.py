"""repro — a reproduction of *LakeHarbor: Making Structures First-Class
Citizens in Data Lakes* (ICDE 2024) and its prototype engine **ReDe**.

The package is layered bottom-up:

* :mod:`repro.cluster` — a deterministic discrete-event simulator modelling
  the paper's 128-node testbed (disks, NICs, cores);
* :mod:`repro.storage` — partitioners, B+trees, heap files, the
  ``File``/``BtreeFile`` I/O abstraction, the simple DFS, and an HDFS-like
  block store;
* :mod:`repro.core` — the paper's contribution: Reference-Dereference
  functions, schema-on-read interpreters, the first-class structure
  catalog, and lazy structure maintenance;
* :mod:`repro.engine` — SMPE (Algorithm 1), the partitioned (w/o SMPE)
  executor, and an in-memory reference oracle;
* :mod:`repro.baselines` — the Impala-like scan engine, the normalized
  claims warehouse, and a plain data-lake scanner;
* :mod:`repro.datagen` / :mod:`repro.queries` — TPC-H and insurance-claims
  generators and the evaluation workloads (Q5', case-study Q1-Q3).

Quickstart::

    from repro import (Cluster, ClusterSpec, ReDeExecutor, StructureCatalog,
                       DistributedFileSystem)
    # see examples/quickstart.py for a complete walk-through
"""

from repro.baselines import (
    ClaimsWarehouse,
    DataLakeEngine,
    HashJoinNode,
    ScanEngine,
    ScanNode,
)
from repro.cluster import Cluster, ClusterSpec, DiskSpec, NetworkSpec, \
    NodeSpec
from repro.config import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    balanced_cluster_spec,
    laptop_cluster_spec,
    paper_cluster_spec,
)
from repro.core import (
    AccessMethodDefinition,
    ChainQuery,
    FileLookupDereferencer,
    Filter,
    IndexEntryReferencer,
    IndexLookupDereferencer,
    IndexRangeDereferencer,
    Interpreter,
    Job,
    JobBuilder,
    KeyReferencer,
    MaintenanceWorker,
    MappingInterpreter,
    Pointer,
    PointerRange,
    Record,
    StructureAdvisor,
    StructureCatalog,
    WorkloadStats,
)
from repro.datagen import ClaimInterpreter, ClaimsGenerator, FhirGenerator, TpchGenerator
from repro.engine import ExecutionMetrics, HybridExecutor, JobResult, ReDeExecutor
from repro.errors import ReproError
from repro.queries import CASE_STUDY_QUERIES, ClaimsLake, TpchWorkload
from repro.storage import (
    BlockStore,
    BPlusTree,
    BtreeFile,
    DistributedFileSystem,
    HashPartitioner,
    PartitionedFile,
    RangePartitioner,
)

__version__ = "1.0.0"

__all__ = [
    "ClaimsWarehouse",
    "DataLakeEngine",
    "HashJoinNode",
    "ScanEngine",
    "ScanNode",
    "Cluster",
    "ClusterSpec",
    "DiskSpec",
    "NetworkSpec",
    "NodeSpec",
    "DEFAULT_ENGINE_CONFIG",
    "EngineConfig",
    "balanced_cluster_spec",
    "laptop_cluster_spec",
    "paper_cluster_spec",
    "AccessMethodDefinition",
    "ChainQuery",
    "FileLookupDereferencer",
    "Filter",
    "IndexEntryReferencer",
    "IndexLookupDereferencer",
    "IndexRangeDereferencer",
    "Interpreter",
    "Job",
    "JobBuilder",
    "KeyReferencer",
    "MaintenanceWorker",
    "MappingInterpreter",
    "Pointer",
    "PointerRange",
    "Record",
    "StructureAdvisor",
    "StructureCatalog",
    "WorkloadStats",
    "ClaimInterpreter",
    "ClaimsGenerator",
    "FhirGenerator",
    "TpchGenerator",
    "ExecutionMetrics",
    "HybridExecutor",
    "JobResult",
    "ReDeExecutor",
    "ReproError",
    "CASE_STUDY_QUERIES",
    "ClaimsLake",
    "TpchWorkload",
    "BlockStore",
    "BPlusTree",
    "BtreeFile",
    "DistributedFileSystem",
    "HashPartitioner",
    "PartitionedFile",
    "RangePartitioner",
    "__version__",
]
